#!/usr/bin/env python3
"""Documentation checks: working links, and architecture coverage.

Two assertions, run by CI's ``docs`` job and by ``tests/test_docs.py``:

1. **Links resolve** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` points at a file that exists in the repository.  External
   links (``http(s)://``, ``mailto:``), pure fragments (``#section``) and
   links that escape the repository root (the CI badge's ``../../actions``
   URL, which GitHub resolves site-relative) are skipped.
2. **The architecture page is complete** — every Python module under
   ``src/repro/`` is mentioned in ``docs/architecture.md`` by its dotted
   name (``src/repro/core/blocks.py`` → ``repro.core.blocks``; a package's
   ``__init__.py`` → the package name itself).  Mentions must be exact:
   ``repro.core`` inside ``repro.core.blocks`` does not count, so every
   package needs a genuine mention of its own.

Stdlib only; exits non-zero with one line per failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
ARCHITECTURE = REPO_ROOT / "docs" / "architecture.md"
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: ``[text](target)`` — good enough for these hand-written pages (no
#: reference-style links, no angle-bracket targets).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def check_links(errors: List[str]) -> None:
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(REPO_ROOT)}: documentation file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                continue  # escapes the repo (e.g. the site-relative CI badge)
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )


def module_names() -> List[str]:
    names = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT.parent)  # repro/...
        if path.name == "__init__.py":
            parts = relative.parts[:-1]
        else:
            parts = relative.with_suffix("").parts
        names.append(".".join(parts))
    return names


def check_architecture_mentions(errors: List[str]) -> None:
    if not ARCHITECTURE.exists():
        errors.append("docs/architecture.md: missing")
        return
    text = ARCHITECTURE.read_text(encoding="utf-8")
    for name in module_names():
        # Exact mention: the dotted name must not continue on either side
        # (so the package `repro.core` is not satisfied by `repro.core.blocks`).
        pattern = re.compile(
            r"(?<![\w.])" + re.escape(name) + r"(?![\w.])"
        )
        if not pattern.search(text):
            errors.append(f"docs/architecture.md: module {name} is not mentioned")


def main() -> int:
    errors: List[str] = []
    check_links(errors)
    check_architecture_mentions(errors)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"{len(errors)} documentation check(s) failed", file=sys.stderr)
        return 1
    modules = len(module_names())
    print(f"docs ok: {len(DOC_FILES)} pages linked, {modules} modules covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
