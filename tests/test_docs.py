"""Documentation stays true: links resolve, architecture covers every module.

Tier-1 wrapper around ``tools/check_docs.py`` (CI also runs the script
directly in its ``docs`` job) so a PR that adds a module without placing it
in ``docs/architecture.md``, or moves a file a doc links to, fails fast.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_markdown_links_resolve():
    errors = []
    check_docs.check_links(errors)
    assert errors == []


def test_architecture_mentions_every_module():
    errors = []
    check_docs.check_architecture_mentions(errors)
    assert errors == []


def test_module_inventory_is_nonempty_and_dotted():
    names = check_docs.module_names()
    assert "repro" in names
    assert "repro.serving.pool" in names
    assert "repro.cli" in names
    assert all(name == "repro" or name.startswith("repro.") for name in names)


def test_checker_spots_a_missing_module(tmp_path, monkeypatch):
    """The coverage check is exact: a package mention does not excuse its
    modules, and vice versa."""
    src = tmp_path / "src" / "repro" / "newpkg"
    src.mkdir(parents=True)
    (src / "__init__.py").write_text('"""pkg"""\n')
    (src / "widget.py").write_text('"""mod"""\n')
    docs = tmp_path / "docs"
    docs.mkdir()
    # Mentions the module but not the package: exactly one failure.
    (docs / "architecture.md").write_text("Only repro.newpkg.widget here.\n")
    monkeypatch.setattr(check_docs, "SRC_ROOT", tmp_path / "src" / "repro")
    monkeypatch.setattr(check_docs, "ARCHITECTURE", docs / "architecture.md")
    errors = []
    check_docs.check_architecture_mentions(errors)
    assert errors == ["docs/architecture.md: module repro.newpkg is not mentioned"]
