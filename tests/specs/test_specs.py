"""Tests for the specification model: charts, rendering, ranking, repository."""

import pytest

from repro.core.errors import DataFormatError
from repro.jboss.reference import FIGURE4_PATTERN
from repro.patterns.result import MinedPattern, PatternMiningResult
from repro.rules.result import RuleMiningResult
from repro.rules.rule import RecurrentRule
from repro.specs.chart import chart_from_pattern
from repro.specs.ranking import pattern_score, rank_patterns, rank_rules, rule_score
from repro.specs.render import render_chart, render_pattern_blocks, render_rule
from repro.specs.repository import SpecificationRepository


# --------------------------------------------------------------------- #
# Charts
# --------------------------------------------------------------------- #
def test_chart_from_method_call_pattern():
    chart = chart_from_pattern(("TxManager.begin", "TxManager.commit", "XidFactory.newXid"))
    assert chart.lifelines == ["TxManager", "XidFactory"]
    assert [message.method for message in chart.messages] == ["begin", "commit", "newXid"]
    assert chart.events() == ("TxManager.begin", "TxManager.commit", "XidFactory.newXid")
    assert len(chart.messages_on("TxManager")) == 2


def test_chart_from_plain_events_uses_default_lifeline():
    chart = chart_from_pattern(("lock", "unlock"), default_lifeline="Mutex")
    assert chart.lifelines == ["Mutex"]
    assert chart.events() == ("Mutex.lock", "Mutex.unlock")


def test_chart_from_empty_pattern_rejected():
    with pytest.raises(DataFormatError):
        chart_from_pattern(())


def test_chart_of_figure4_pattern_has_expected_lifelines():
    chart = chart_from_pattern(FIGURE4_PATTERN, name="fig4")
    assert set(chart.lifelines) == {
        "TransactionManagerLocator",
        "TxManager",
        "XidFactory",
        "XidImpl",
        "TransactionImpl",
        "LocalId",
    }
    assert len(chart) == 32


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def test_render_chart_mentions_lifelines_and_methods():
    chart = chart_from_pattern(("Lock.acquire", "Lock.release"), name="locking")
    text = render_chart(chart)
    assert "locking" in text
    assert "Lock" in text
    assert "[acquire]" in text and "[release]" in text


def test_render_pattern_blocks():
    text = render_pattern_blocks(("a", "b", "c", "d"), block_titles=("Setup", "Teardown"), block_size=2)
    lines = text.splitlines()
    assert lines[0] == "Setup"
    assert "  a" in lines and "  d" in lines
    assert "Teardown" in lines


def test_render_rule_shows_premise_and_consequent():
    rule = RecurrentRule(("a",), ("b", "c"), s_support=3, i_support=4, confidence=0.9)
    text = render_rule(rule)
    assert "Premise:" in text and "Consequent:" in text
    assert "  a" in text and "  c" in text
    assert "conf=0.90" in text


# --------------------------------------------------------------------- #
# Ranking
# --------------------------------------------------------------------- #
def test_pattern_ranking_prefers_long_frequent_patterns():
    short = MinedPattern(("a",), support=10)
    long_rare = MinedPattern(("a", "b", "c", "d"), support=3)
    assert pattern_score(long_rare) > pattern_score(short)
    result = PatternMiningResult(patterns=[short, long_rare])
    ranked = rank_patterns(result)
    assert ranked[0][1] == long_rare
    assert rank_patterns(result, top=1) == ranked[:1]


def test_rule_ranking_prefers_confident_rules():
    strong = RecurrentRule(("a",), ("b",), s_support=5, i_support=10, confidence=0.95)
    weak = RecurrentRule(("a",), ("c",), s_support=5, i_support=10, confidence=0.55)
    assert rule_score(strong) > rule_score(weak)
    result = RuleMiningResult(rules=[weak, strong])
    assert rank_rules(result)[0][1] == strong


# --------------------------------------------------------------------- #
# Repository
# --------------------------------------------------------------------- #
def test_repository_stores_and_queries_specs():
    repository = SpecificationRepository("jboss")
    repository.add_pattern(MinedPattern(("TxManager.begin", "TxManager.commit"), support=7))
    repository.add_rule(
        RecurrentRule(("lock",), ("unlock",), s_support=3, i_support=5, confidence=0.9)
    )
    assert len(repository) == 2
    assert repository.patterns_mentioning("TxManager.begin")
    assert repository.rules_mentioning("unlock")
    assert not repository.rules_mentioning("missing")
    assert repository.rules_as_ltl() == ["G((lock -> XF(unlock)))"]


def test_repository_bulk_add_from_results():
    repository = SpecificationRepository()
    patterns = PatternMiningResult(patterns=[MinedPattern(("a",), support=2)])
    rules = RuleMiningResult(
        rules=[RecurrentRule(("a",), ("b",), s_support=2, i_support=2, confidence=1.0)]
    )
    assert repository.add_pattern_result(patterns) == 1
    assert repository.add_rule_result(rules) == 1
    assert len(repository) == 2


def test_repository_save_and_load_round_trip(tmp_path):
    repository = SpecificationRepository("round-trip")
    repository.add_pattern(MinedPattern(("a", "b"), support=4))
    repository.add_rule(
        RecurrentRule(("a",), ("b", "c"), s_support=2, i_support=3, confidence=0.75)
    )
    path = tmp_path / "specs.json"
    repository.save(path)
    loaded = SpecificationRepository.load(path)
    assert loaded.name == "round-trip"
    assert loaded.patterns[0].events == ("a", "b")
    assert loaded.rules[0].consequent == ("b", "c")
    assert loaded.rules[0].confidence == pytest.approx(0.75)


def test_repository_load_rejects_malformed_files(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(DataFormatError):
        SpecificationRepository.load(path)
    path.write_text('{"something": "else"}', encoding="utf-8")
    with pytest.raises(DataFormatError):
        SpecificationRepository.load(path)


def test_repository_refresh_from_store(tmp_path):
    from repro.engine import SerialBackend
    from repro.ingest import TraceStore
    from repro.patterns.closed_miner import ClosedIterativePatternMiner
    from repro.patterns.config import IterativeMiningConfig
    from repro.rules.config import RuleMiningConfig
    from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner

    store = TraceStore(tmp_path / "store")
    store.append_batch(
        [["lock", "use", "unlock"], ["lock", "unlock"], ["lock", "use", "unlock"]]
    )
    repository = SpecificationRepository(name="from-store")
    repository.refresh_from_store(
        store,
        pattern_miner=ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)),
        rule_miner=NonRedundantRecurrentRuleMiner(
            RuleMiningConfig(min_s_support=2, min_confidence=0.5)
        ),
        backend=SerialBackend(),
    )
    assert repository.patterns and repository.rules
    assert repository.source["fingerprint"] == store.fingerprint
    assert repository.source["traces"] == 3

    # Provenance survives the JSON round trip.
    path = tmp_path / "specs.json"
    repository.save(path)
    loaded = SpecificationRepository.load(path)
    assert loaded.source == repository.source

    # Appending and refreshing replaces contents and updates provenance.
    store.append_batch([["lock", "use", "use", "unlock"]])
    repository.refresh_from_store(
        store,
        pattern_miner=ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)),
    )
    assert repository.source["fingerprint"] == store.fingerprint
    assert repository.source["traces"] == 4
    assert not repository.rules  # refresh replaces, never accumulates

    with pytest.raises(DataFormatError):
        repository.refresh_from_store(store)


def test_refresh_from_store_failure_leaves_repository_intact(tmp_path):
    from repro.ingest import TraceStore
    from repro.patterns.result import MinedPattern

    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b"]])
    repository = SpecificationRepository(name="intact")
    repository.add_pattern(MinedPattern(events=("a",), support=3))

    class ExplodingMiner:
        def mine(self, database, backend=None):
            raise RuntimeError("worker lost")

    with pytest.raises(RuntimeError):
        repository.refresh_from_store(store, pattern_miner=ExplodingMiner())
    assert [pattern.events for pattern in repository.patterns] == [("a",)]
    assert repository.source is None
