"""End-to-end tests for the ``repro-mine`` command line interface."""

import json

import pytest

from repro.cli import main


def test_generate_and_mine_patterns_round_trip(tmp_path, capsys):
    traces = tmp_path / "synthetic.jsonl"
    assert main(["generate", "--profile", "D1C10N1S4", "--scale", "0.05", "--output", str(traces)]) == 0
    output = capsys.readouterr().out
    assert "wrote 50 sequences" in output

    repo_path = tmp_path / "patterns.json"
    code = main(
        [
            "mine-patterns",
            "--input",
            str(traces),
            "--min-support",
            "10",
            "--max-length",
            "3",
            "--save",
            str(repo_path),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "closed iterative patterns" in output
    payload = json.loads(repo_path.read_text())
    assert "patterns" in payload


def test_jboss_mine_rules_and_monitor(tmp_path, capsys):
    traces = tmp_path / "security.txt"
    assert main(["jboss", "--component", "security", "--output", str(traces)]) == 0
    capsys.readouterr()

    specs = tmp_path / "rules.json"
    code = main(
        [
            "mine-rules",
            "--input",
            str(traces),
            "--min-s-support",
            "0.5",
            "--min-confidence",
            "0.6",
            "--max-premise-length",
            "1",
            "--max-consequent-length",
            "2",
            "--save",
            str(specs),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "non-redundant recurrent rules" in output
    assert json.loads(specs.read_text())["rules"]

    exit_code = main(["monitor", "--input", str(traces), "--specs", str(specs)])
    output = capsys.readouterr().out
    assert "monitored temporal points" in output
    assert exit_code in (0, 1)


def test_mine_patterns_with_parallel_workers(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text(
        "lock\nuse\nunlock\n\nlock\nunlock\n\nlock\nread\nunlock\n", encoding="utf-8"
    )
    base = ["mine-patterns", "--input", str(traces), "--min-support", "2"]
    assert main(base) == 0
    serial_output = capsys.readouterr().out
    assert "backend=serial" in serial_output

    assert main(base + ["--workers", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert "backend=process[workers=2]" in parallel_output
    # The mined table must be identical; only the summary line may differ.
    assert serial_output.splitlines()[1:] == parallel_output.splitlines()[1:]


def test_mine_rules_with_explicit_backend(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text("lock\nuse\nunlock\n\nlock\nunlock\n", encoding="utf-8")
    code = main(
        [
            "mine-rules",
            "--input",
            str(traces),
            "--min-s-support",
            "2",
            "--min-confidence",
            "0.5",
            "--backend",
            "process",
            "--workers",
            "2",
        ]
    )
    assert code == 0
    assert "backend=process[workers=2]" in capsys.readouterr().out


def test_mine_patterns_full_flag(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text("lock\nuse\nunlock\n\nlock\nunlock\n", encoding="utf-8")
    assert main(["mine-patterns", "--input", str(traces), "--min-support", "2", "--full"]) == 0
    assert "frequent iterative patterns" in capsys.readouterr().out


def test_monitor_with_empty_spec_repository(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text("a\nb\n", encoding="utf-8")
    specs = tmp_path / "empty.json"
    specs.write_text(json.dumps({"name": "empty", "patterns": [], "rules": []}), encoding="utf-8")
    assert main(["monitor", "--input", str(traces), "--specs", str(specs)]) == 2


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
