"""End-to-end tests for the ``repro-mine`` command line interface."""

import json

import pytest

from repro.cli import main


def test_generate_and_mine_patterns_round_trip(tmp_path, capsys):
    traces = tmp_path / "synthetic.jsonl"
    assert main(["generate", "--profile", "D1C10N1S4", "--scale", "0.05", "--output", str(traces)]) == 0
    output = capsys.readouterr().out
    assert "wrote 50 sequences" in output

    repo_path = tmp_path / "patterns.json"
    code = main(
        [
            "mine-patterns",
            "--input",
            str(traces),
            "--min-support",
            "10",
            "--max-length",
            "3",
            "--save",
            str(repo_path),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "closed iterative patterns" in output
    payload = json.loads(repo_path.read_text())
    assert "patterns" in payload


def test_jboss_mine_rules_and_monitor(tmp_path, capsys):
    traces = tmp_path / "security.txt"
    assert main(["jboss", "--component", "security", "--output", str(traces)]) == 0
    capsys.readouterr()

    specs = tmp_path / "rules.json"
    code = main(
        [
            "mine-rules",
            "--input",
            str(traces),
            "--min-s-support",
            "0.5",
            "--min-confidence",
            "0.6",
            "--max-premise-length",
            "1",
            "--max-consequent-length",
            "2",
            "--save",
            str(specs),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "non-redundant recurrent rules" in output
    assert json.loads(specs.read_text())["rules"]

    exit_code = main(["monitor", "--input", str(traces), "--specs", str(specs)])
    output = capsys.readouterr().out
    assert "monitored temporal points" in output
    assert exit_code in (0, 1)


def test_mine_patterns_with_parallel_workers(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text(
        "lock\nuse\nunlock\n\nlock\nunlock\n\nlock\nread\nunlock\n", encoding="utf-8"
    )
    base = ["mine-patterns", "--input", str(traces), "--min-support", "2"]
    assert main(base) == 0
    serial_output = capsys.readouterr().out
    assert "backend=serial" in serial_output

    assert main(base + ["--workers", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert "backend=process[workers=2]" in parallel_output
    # The mined table must be identical; only the summary line may differ.
    assert serial_output.splitlines()[1:] == parallel_output.splitlines()[1:]


def test_mine_rules_with_explicit_backend(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text("lock\nuse\nunlock\n\nlock\nunlock\n", encoding="utf-8")
    code = main(
        [
            "mine-rules",
            "--input",
            str(traces),
            "--min-s-support",
            "2",
            "--min-confidence",
            "0.5",
            "--backend",
            "process",
            "--workers",
            "2",
        ]
    )
    assert code == 0
    assert "backend=process[workers=2]" in capsys.readouterr().out


def test_mine_patterns_full_flag(tmp_path, capsys):
    traces = tmp_path / "tiny.txt"
    traces.write_text("lock\nuse\nunlock\n\nlock\nunlock\n", encoding="utf-8")
    assert main(["mine-patterns", "--input", str(traces), "--min-support", "2", "--full"]) == 0
    assert "frequent iterative patterns" in capsys.readouterr().out


@pytest.mark.parametrize("stream", [False, True])
def test_monitor_with_empty_spec_repository_reports_clean(tmp_path, capsys, stream):
    """Zero mined rules is a vacuous spec: a clean report, not a crash."""
    traces = tmp_path / "tiny.txt"
    traces.write_text("a\nb\n", encoding="utf-8")
    specs = tmp_path / "empty.json"
    specs.write_text(json.dumps({"name": "empty", "patterns": [], "rules": []}), encoding="utf-8")
    command = ["monitor", "--input", str(traces), "--specs", str(specs)]
    assert main(command + (["--stream"] if stream else [])) == 0
    captured = capsys.readouterr()
    assert "violations                : 0" in captured.out
    assert "no rules" in captured.err


def test_unknown_command_is_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# --------------------------------------------------------------------- #
# Streaming ingestion: generate -> ingest -> mine, every format.
# --------------------------------------------------------------------- #
ALL_FORMAT_SUFFIXES = [".txt", ".jsonl", ".csv", ".txt.gz", ".jsonl.gz", ".csv.gz"]


def _mining_output(text):
    """The mined report with the summary line's timing stripped."""
    lines = text.splitlines()
    return [lines[0].rsplit(", ", 1)[0]] + lines[1:]


@pytest.mark.parametrize("suffix", ALL_FORMAT_SUFFIXES)
def test_generate_ingest_mine_patterns_round_trip(tmp_path, capsys, suffix):
    """Mining a store snapshot must print the same table as mining the file."""
    traces = tmp_path / f"synthetic{suffix}"
    assert main(
        ["generate", "--profile", "D1C10N1S4", "--scale", "0.05", "--output", str(traces)]
    ) == 0
    capsys.readouterr()

    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(traces)]) == 0
    output = capsys.readouterr().out
    assert "appended batch 0" in output
    assert "50 traces" in output

    mine = ["--min-support", "10", "--max-length", "3"]
    assert main(["mine-patterns", "--input", str(traces)] + mine) == 0
    direct = capsys.readouterr().out
    assert main(["mine-patterns", "--store", str(store)] + mine) == 0
    from_store = capsys.readouterr().out
    # Same mined table and summary (minus timing and the store's header).
    assert _mining_output(direct) == _mining_output(from_store)


@pytest.mark.parametrize("suffix", [".jsonl", ".csv.gz"])
def test_generate_ingest_mine_rules_round_trip(tmp_path, capsys, suffix):
    traces = tmp_path / f"security{suffix}"
    assert main(["jboss", "--component", "security", "--output", str(traces)]) == 0
    capsys.readouterr()

    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(traces)]) == 0
    capsys.readouterr()

    mine = [
        "--min-s-support", "0.5", "--min-confidence", "0.6",
        "--max-premise-length", "1", "--max-consequent-length", "2",
    ]
    assert main(["mine-rules", "--input", str(traces)] + mine) == 0
    direct = capsys.readouterr().out
    assert main(["mine-rules", "--store", str(store)] + mine) == 0
    from_store = capsys.readouterr().out
    assert _mining_output(direct) == _mining_output(from_store)


def test_mine_patterns_append_into_store(tmp_path, capsys):
    first = tmp_path / "first.txt"
    first.write_text("lock\nuse\nunlock\n\nlock\nunlock\n", encoding="utf-8")
    second = tmp_path / "second.txt"
    second.write_text("lock\nread\nunlock\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(first)]) == 0
    capsys.readouterr()

    code = main(
        [
            "mine-patterns",
            "--store", str(store),
            "--append", str(second),
            "--min-support", "2",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    # Store progress goes to stderr; stdout stays the machine-readable report.
    assert "appended batch 1" in captured.err
    assert "3 traces in 2 batches" in captured.err
    assert "closed iterative patterns" in captured.out
    assert "store" not in captured.out


def test_ingest_batch_size_splits_files(tmp_path, capsys):
    traces = tmp_path / "traces.txt"
    traces.write_text("a\n\nb\n\nc\n\nd\n\ne\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(
        ["ingest", "--store", str(store), "--input", str(traces), "--batch-size", "2"]
    ) == 0
    output = capsys.readouterr().out
    assert "appended batch 0" in output and "appended batch 2" in output
    assert "5 traces" in output and "3 batches" in output


def test_ingest_without_inputs_prints_stats(tmp_path, capsys):
    traces = tmp_path / "traces.txt"
    traces.write_text("a\nb\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(traces)]) == 0
    capsys.readouterr()
    assert main(["ingest", "--store", str(store)]) == 0
    assert "1 traces" in capsys.readouterr().out
    # Stats-only invocations never create a store at a typo'd path.
    missing = tmp_path / "typo-store"
    assert main(["ingest", "--store", str(missing)]) == 2
    assert "no trace store" in capsys.readouterr().err
    assert not missing.exists()


def test_append_of_an_empty_file_commits_nothing(tmp_path, capsys):
    traces = tmp_path / "traces.txt"
    traces.write_text("a\nb\n\na\nb\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(traces)]) == 0
    capsys.readouterr()
    from repro.ingest import TraceStore

    fingerprint = TraceStore.open(store).fingerprint
    empty = tmp_path / "empty.txt"
    empty.write_text("\n\n", encoding="utf-8")
    assert main(
        ["mine-patterns", "--store", str(store), "--append", str(empty), "--min-support", "2"]
    ) == 0
    capsys.readouterr()
    reopened = TraceStore.open(store)
    assert len(reopened.batches) == 1
    assert reopened.fingerprint == fingerprint


def test_ingest_validates_inputs_before_creating_the_store(tmp_path, capsys):
    """A typo'd input must not leave behind a fresh empty store."""
    store = tmp_path / "store"
    missing = tmp_path / "tarces.jsonl"
    assert main(["ingest", "--store", str(store), "--input", str(missing)]) == 2
    assert "no trace file" in capsys.readouterr().err
    assert not store.exists()
    bad_suffix = tmp_path / "traces.parquet"
    bad_suffix.write_text("x\n", encoding="utf-8")
    assert main(["ingest", "--store", str(store), "--input", str(bad_suffix)]) == 2
    assert "cannot infer trace format" in capsys.readouterr().err
    assert not store.exists()


def test_ingest_parse_error_commits_nothing_for_that_file(tmp_path, capsys):
    """A file failing mid-parse is a clean error and a no-op on the store."""
    good = tmp_path / "good.txt"
    good.write_text("a\nb\n", encoding="utf-8")
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"events": ["a"]}\nnot json\n', encoding="utf-8")
    store = tmp_path / "store"
    code = main(
        ["ingest", "--store", str(store), "--input", str(good), str(bad), "--batch-size", "1"]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "invalid JSON" in captured.err
    # good.txt committed as one batch; no chunk of bad.jsonl did.
    assert main(["ingest", "--store", str(store)]) == 0
    stats = capsys.readouterr().out
    assert "1 traces (2 events" in stats and "in 1 batches" in stats


def test_mine_append_with_bad_file_fails_cleanly(tmp_path, capsys):
    first = tmp_path / "first.txt"
    first.write_text("a\nb\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(first)]) == 0
    capsys.readouterr()
    good = tmp_path / "good.txt"
    good.write_text("c\nd\n", encoding="utf-8")
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    code = main(
        [
            "mine-patterns", "--store", str(store),
            "--append", str(good), "--append", str(bad),
            "--min-support", "2",
        ]
    )
    assert code == 2
    assert "invalid JSON" in capsys.readouterr().err
    # All-or-nothing: not even good.txt was appended, so re-running the
    # fixed command cannot duplicate its traces.
    assert main(["ingest", "--store", str(store)]) == 0
    assert "in 1 batches" in capsys.readouterr().out


def test_ingest_first_file_parse_error_removes_the_fresh_store(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(bad)]) == 2
    assert "invalid JSON" in capsys.readouterr().err
    assert not store.exists()
    # And with no store left behind, --store mining stays a loud error.
    assert main(["mine-patterns", "--store", str(store), "--min-support", "2"]) == 2
    assert "no trace store" in capsys.readouterr().err


def test_mining_an_empty_store_is_a_loud_error(tmp_path, capsys):
    from repro.ingest import TraceStore

    TraceStore(tmp_path / "store")  # library-level creation of an empty store
    assert main(
        ["mine-patterns", "--store", str(tmp_path / "store"), "--min-support", "2"]
    ) == 2
    assert "holds no traces" in capsys.readouterr().err


def test_mining_source_misuse_is_rejected(tmp_path, capsys):
    traces = tmp_path / "traces.txt"
    traces.write_text("a\nb\n", encoding="utf-8")
    assert main(["mine-patterns", "--min-support", "2"]) == 2
    assert "exactly one of" in capsys.readouterr().err
    assert main(
        ["mine-patterns", "--input", str(traces), "--store", str(tmp_path / "s"),
         "--min-support", "2"]
    ) == 2
    capsys.readouterr()
    assert main(
        ["mine-rules", "--input", str(traces), "--append", str(traces)]
    ) == 2
    assert "--append requires --store" in capsys.readouterr().err


def test_mining_a_missing_store_is_a_loud_error(tmp_path, capsys):
    """A typo'd --store path must not silently create an empty store."""
    missing = tmp_path / "no-such.tracestore"
    assert main(["mine-patterns", "--store", str(missing), "--min-support", "2"]) == 2
    assert "no trace store" in capsys.readouterr().err
    assert not missing.exists()
    # --append does not soften it: mining never creates stores.
    traces = tmp_path / "traces.txt"
    traces.write_text("a\nb\n", encoding="utf-8")
    assert main(
        ["mine-rules", "--store", str(missing), "--append", str(traces)]
    ) == 2
    assert "no trace store" in capsys.readouterr().err
    assert not missing.exists()


# --------------------------------------------------------------------- #
# Serving layer: streaming monitor, cross-invocation --append, watch mode.
# --------------------------------------------------------------------- #
def test_monitor_stream_matches_offline_output(tmp_path, capsys):
    traces = tmp_path / "security.txt"
    assert main(["jboss", "--component", "security", "--output", str(traces)]) == 0
    specs = tmp_path / "rules.json"
    assert main(
        [
            "mine-rules", "--input", str(traces),
            "--min-s-support", "0.5", "--min-confidence", "0.6",
            "--max-premise-length", "1", "--max-consequent-length", "2",
            "--save", str(specs),
        ]
    ) == 0
    capsys.readouterr()

    offline_code = main(["monitor", "--input", str(traces), "--specs", str(specs)])
    offline = capsys.readouterr().out
    stream_code = main(["monitor", "--input", str(traces), "--specs", str(specs), "--stream"])
    streamed = capsys.readouterr().out
    assert streamed == offline
    assert stream_code == offline_code


def test_store_mining_is_incremental_across_invocations(tmp_path, capsys):
    """The persisted record cache makes a second --append run a delta."""
    first = tmp_path / "first.txt"
    first.write_text("lock\nuse\nunlock\n\nlock\nunlock\n\nopen\nclose\n\nopen\nclose\n", encoding="utf-8")
    second = tmp_path / "second.txt"
    second.write_text("lock\nread\nunlock\n", encoding="utf-8")
    store = tmp_path / "store"
    assert main(["ingest", "--store", str(store), "--input", str(first)]) == 0
    capsys.readouterr()

    mine = ["--min-support", "2"]
    assert main(["mine-patterns", "--store", str(store)] + mine) == 0
    first_run = capsys.readouterr()
    assert "initial mine" in first_run.err
    assert (store / "cache").is_dir()

    # Second invocation (a fresh process in real life): only the roots the
    # appended file touched are re-mined, and the output still matches a
    # from-scratch mine of the concatenated corpus.
    assert main(["mine-patterns", "--store", str(store), "--append", str(second)] + mine) == 0
    second_run = capsys.readouterr()
    assert "re-mined" in second_run.err and "initial mine" not in second_run.err

    flat = tmp_path / "flat.txt"
    flat.write_text(first.read_text() + "\n" + second.read_text(), encoding="utf-8")
    assert main(["mine-patterns", "--input", str(flat)] + mine) == 0
    direct = capsys.readouterr().out
    assert _mining_output(direct) == _mining_output(second_run.out)


def test_watch_command_runs_the_serving_loop(tmp_path, capsys):
    watch_dir = tmp_path / "incoming"
    watch_dir.mkdir()
    (watch_dir / "day1.txt").write_text(
        "lock\nunlock\n\nlock\nunlock\n\nlock\nwork\n", encoding="utf-8"
    )
    specs = tmp_path / "watch-specs.json"
    code = main(
        [
            "watch",
            "--dir", str(watch_dir),
            "--store", str(tmp_path / "watch-store"),
            "--interval", "0.01",
            "--max-cycles", "1",
            "--min-s-support", "2",
            "--min-confidence", "0.5",
            "--save", str(specs),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "ingested" in captured.out
    assert "serving" in captured.out and "hot-swapped" in captured.out
    assert "VIOLATION" in captured.out  # <lock> -> <unlock> fails on trace 2
    assert "watched 1 cycles" in captured.out
    assert json.loads(specs.read_text())["rules"]


def test_watch_command_requires_an_existing_directory(tmp_path, capsys):
    code = main(
        ["watch", "--dir", str(tmp_path / "missing"), "--store", str(tmp_path / "store")]
    )
    assert code == 2
    assert "no directory to watch" in capsys.readouterr().err


def test_serve_command_round_trip(tmp_path):
    """`repro serve --port 0` prints its bound address on stderr and speaks
    the push protocol end to end (exercised as a real subprocess)."""
    import os
    import re
    import subprocess
    import sys
    from pathlib import Path

    import repro
    from repro.rules.rule import RecurrentRule
    from repro.serving import PushClient
    from repro.specs.repository import SpecificationRepository

    specs = tmp_path / "rules.json"
    repository = SpecificationRepository(name="serve-test")
    repository.add_rule(
        RecurrentRule(
            premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0
        )
    )
    repository.save(specs)

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = {**os.environ}
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--rules", str(specs), "--port", "0", "--shards", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = process.stderr.readline()
        match = re.search(r"serving 1 rules on 127\.0\.0\.1:(\d+)", banner)
        assert match, banner
        port = int(match.group(1))
        with PushClient("127.0.0.1", port) as client:
            assert client.ping() == {"op": "PONG"}
            assert client.feed("s", "open") == {"op": "OK"}
            reply = client.end("s")
            assert reply["op"] == "SESSION" and reply["violation_count"] == 1
            client.shutdown()
        stdout, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0
    assert "served 1 sessions" in stdout
    assert "violations                : 1" in stdout
    assert "VIOLATION" in stdout


def test_serve_command_requires_a_readable_repository(tmp_path, capsys):
    code = main(["serve", "--rules", str(tmp_path / "missing.json")])
    assert code == 2
    assert "missing.json" in capsys.readouterr().err


def test_watch_command_with_push_port_prints_the_address(tmp_path, capsys):
    watch_dir = tmp_path / "incoming"
    watch_dir.mkdir()
    code = main(
        [
            "watch",
            "--dir", str(watch_dir),
            "--store", str(tmp_path / "store"),
            "--interval", "0.0",
            "--max-cycles", "1",
            "--push-port", "0",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "push serving on 127.0.0.1:" in captured.err
    assert "watched 1 cycles" in captured.out
