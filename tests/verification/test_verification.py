"""Tests for runtime monitoring and coverage analysis."""

import pytest

from repro.core.errors import MonitoringError
from repro.core.sequence import SequenceDatabase
from repro.ltl.semantics import holds
from repro.ltl.translate import rule_to_ltl
from repro.patterns.result import MinedPattern
from repro.rules.rule import RecurrentRule
from repro.verification.coverage import coverage_of, specification_events
from repro.verification.monitor import RuleMonitor, monitor_database


def _rule(premise, consequent):
    return RecurrentRule(
        premise=tuple(premise),
        consequent=tuple(consequent),
        s_support=1,
        i_support=1,
        confidence=1.0,
    )


def test_monitor_requires_rules():
    with pytest.raises(MonitoringError):
        RuleMonitor([])


def test_monitor_detects_satisfaction_and_violation():
    monitor = RuleMonitor([_rule(["lock"], ["unlock"])])
    good = ["lock", "use", "unlock", "lock", "unlock"]
    bad = ["lock", "use", "unlock", "lock"]
    assert monitor.satisfies(good)
    assert not monitor.satisfies(bad)
    report = monitor.check_trace(bad, trace_index=3, trace_name="t3")
    assert report.total_points == 2
    assert report.satisfied_points == 1
    assert report.violation_count == 1
    violation = report.violations[0]
    assert violation.trace_index == 3
    assert violation.position == 3
    assert "t3" in violation.describe()


def test_monitor_multi_event_rule():
    monitor = RuleMonitor([_rule(["init", "start"], ["stop", "cleanup"])])
    assert monitor.satisfies(["init", "start", "work", "stop", "cleanup"])
    assert not monitor.satisfies(["init", "start", "stop"])
    assert monitor.satisfies(["init", "boot"])  # premise never completes


def test_monitor_agrees_with_ltl_semantics():
    rule = _rule(["a", "b"], ["c"])
    formula = rule_to_ltl(rule.premise, rule.consequent)
    monitor = RuleMonitor([rule])
    traces = [
        ["a", "b", "c"],
        ["a", "b"],
        ["b", "c"],
        ["a", "x", "b", "y", "c", "a", "b"],
    ]
    for trace in traces:
        assert monitor.satisfies(trace) == holds(formula, trace)


def test_monitor_database_aggregates_and_reports_per_rule_points():
    db = SequenceDatabase.from_sequences(
        [["lock", "unlock"], ["lock", "work"], ["idle"]]
    )
    report = monitor_database(db, [_rule(["lock"], ["unlock"])])
    assert report.total_points == 2
    assert report.satisfied_points == 1
    assert report.violation_count == 1
    assert report.satisfaction_rate == pytest.approx(0.5)
    assert report.per_rule_points[(("lock",), ("unlock",))] == 2
    assert report.violated_rules() == [_rule(["lock"], ["unlock"])]
    assert "violations" in report.summary()


def test_report_with_no_points_has_full_satisfaction():
    db = SequenceDatabase.from_sequences([["idle"]])
    report = monitor_database(db, [_rule(["lock"], ["unlock"])])
    assert report.total_points == 0
    assert report.satisfaction_rate == 1.0


def test_specification_events_union():
    events = specification_events(
        [MinedPattern(("a", "b"), support=1)], [_rule(["c"], ["d"])]
    )
    assert events == {"a", "b", "c", "d"}


def test_coverage_of_patterns():
    db = SequenceDatabase.from_sequences([["a", "x", "b", "z"], ["q", "r"]])
    report = coverage_of(db, patterns=[MinedPattern(("a", "b"), support=1)])
    assert report.total_events == 6
    # The instance <a, x, b> covers 3 of the 6 positions.
    assert report.covered_positions == 3
    assert report.position_coverage == pytest.approx(0.5)
    assert report.per_trace_coverage == [pytest.approx(0.75), 0.0]
    # Vocabulary: a and b are mentioned, out of 6 distinct observed events.
    assert report.vocabulary_coverage == pytest.approx(2 / 6)


def test_coverage_with_rules_counts_vocabulary_only():
    db = SequenceDatabase.from_sequences([["a", "b"]])
    report = coverage_of(db, rules=[_rule(["a"], ["b"])])
    assert report.covered_positions == 0
    assert report.vocabulary_coverage == pytest.approx(1.0)


def test_coverage_of_empty_database():
    report = coverage_of(SequenceDatabase())
    assert report.position_coverage == 0.0
    assert report.vocabulary_coverage == 0.0
    assert report.summary()["total_events"] == 0.0
