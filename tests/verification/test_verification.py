"""Tests for runtime monitoring and coverage analysis."""

import pytest

from repro.core.sequence import SequenceDatabase
from repro.ltl.semantics import holds
from repro.ltl.translate import rule_to_ltl
from repro.patterns.result import MinedPattern
from repro.rules.rule import RecurrentRule
from repro.verification.coverage import coverage_of, specification_events
from repro.verification.monitor import RuleMonitor, monitor_database


def _rule(premise, consequent):
    return RecurrentRule(
        premise=tuple(premise),
        consequent=tuple(consequent),
        s_support=1,
        i_support=1,
        confidence=1.0,
    )


def test_monitor_with_no_rules_reports_clean():
    """An empty rule set is vacuously satisfied, never a crash."""
    monitor = RuleMonitor([])
    assert monitor.satisfies(["a", "b"])
    report = monitor.check_database(SequenceDatabase.from_sequences([["a"], []]))
    assert report.total_points == 0
    assert report.violation_count == 0
    assert report.satisfaction_rate == 1.0


def test_monitor_detects_satisfaction_and_violation():
    monitor = RuleMonitor([_rule(["lock"], ["unlock"])])
    good = ["lock", "use", "unlock", "lock", "unlock"]
    bad = ["lock", "use", "unlock", "lock"]
    assert monitor.satisfies(good)
    assert not monitor.satisfies(bad)
    report = monitor.check_trace(bad, trace_index=3, trace_name="t3")
    assert report.total_points == 2
    assert report.satisfied_points == 1
    assert report.violation_count == 1
    violation = report.violations[0]
    assert violation.trace_index == 3
    assert violation.position == 3
    assert "t3" in violation.describe()


def test_monitor_multi_event_rule():
    monitor = RuleMonitor([_rule(["init", "start"], ["stop", "cleanup"])])
    assert monitor.satisfies(["init", "start", "work", "stop", "cleanup"])
    assert not monitor.satisfies(["init", "start", "stop"])
    assert monitor.satisfies(["init", "boot"])  # premise never completes


def test_monitor_agrees_with_ltl_semantics():
    rule = _rule(["a", "b"], ["c"])
    formula = rule_to_ltl(rule.premise, rule.consequent)
    monitor = RuleMonitor([rule])
    traces = [
        ["a", "b", "c"],
        ["a", "b"],
        ["b", "c"],
        ["a", "x", "b", "y", "c", "a", "b"],
    ]
    for trace in traces:
        assert monitor.satisfies(trace) == holds(formula, trace)


def test_monitor_database_aggregates_and_reports_per_rule_points():
    db = SequenceDatabase.from_sequences(
        [["lock", "unlock"], ["lock", "work"], ["idle"]]
    )
    report = monitor_database(db, [_rule(["lock"], ["unlock"])])
    assert report.total_points == 2
    assert report.satisfied_points == 1
    assert report.violation_count == 1
    assert report.satisfaction_rate == pytest.approx(0.5)
    assert report.per_rule_points[(("lock",), ("unlock",))] == 2
    assert report.violated_rules() == [_rule(["lock"], ["unlock"])]
    assert "violations" in report.summary()


def test_report_with_no_points_has_full_satisfaction():
    db = SequenceDatabase.from_sequences([["idle"]])
    report = monitor_database(db, [_rule(["lock"], ["unlock"])])
    assert report.total_points == 0
    assert report.satisfaction_rate == 1.0


def test_specification_events_union():
    events = specification_events(
        [MinedPattern(("a", "b"), support=1)], [_rule(["c"], ["d"])]
    )
    assert events == {"a", "b", "c", "d"}


def test_coverage_of_patterns():
    db = SequenceDatabase.from_sequences([["a", "x", "b", "z"], ["q", "r"]])
    report = coverage_of(db, patterns=[MinedPattern(("a", "b"), support=1)])
    assert report.total_events == 6
    # The instance <a, x, b> covers 3 of the 6 positions.
    assert report.covered_positions == 3
    assert report.position_coverage == pytest.approx(0.5)
    assert report.per_trace_coverage == [pytest.approx(0.75), 0.0]
    # Vocabulary: a and b are mentioned, out of 6 distinct observed events.
    assert report.vocabulary_coverage == pytest.approx(2 / 6)


def test_coverage_with_rules_counts_vocabulary_only():
    db = SequenceDatabase.from_sequences([["a", "b"]])
    report = coverage_of(db, rules=[_rule(["a"], ["b"])])
    assert report.covered_positions == 0
    assert report.vocabulary_coverage == pytest.approx(1.0)


def test_coverage_of_empty_database():
    report = coverage_of(SequenceDatabase())
    assert report.position_coverage == 0.0
    assert report.vocabulary_coverage == 0.0
    assert report.summary()["total_events"] == 0.0


# --------------------------------------------------------------------- #
# Edge cases: empty databases, never-occurring events, overlap, merging.
# --------------------------------------------------------------------- #
def test_monitor_empty_database_yields_an_empty_report():
    report = monitor_database(SequenceDatabase(), [_rule(["a"], ["b"])])
    assert report.total_points == 0
    assert report.violation_count == 0
    assert report.per_rule_points == {}
    assert report.satisfaction_rate == 1.0


def test_monitor_rules_whose_events_never_occur():
    db = SequenceDatabase.from_sequences([["x", "y"], ["z"]])
    report = monitor_database(db, [_rule(["ghost"], ["phantom"])])
    assert report.total_points == 0
    assert report.violation_count == 0
    # The rule is still accounted for: zero points per checked trace.
    assert report.per_rule_points == {(("ghost",), ("phantom",)): 0}


def test_monitor_empty_trace_in_database():
    db = SequenceDatabase.from_sequences([[], ["lock"]])
    report = monitor_database(db, [_rule(["lock"], ["unlock"])])
    assert report.total_points == 1
    assert report.violation_count == 1
    assert report.violations[0].trace_index == 1


def test_coverage_of_empty_database_with_specifications():
    report = coverage_of(
        SequenceDatabase(),
        patterns=[MinedPattern(("a", "b"), support=1)],
        rules=[_rule(["c"], ["d"])],
    )
    assert report.total_events == 0
    assert report.position_coverage == 0.0
    # No observed events at all: vocabulary coverage is 0, not NaN.
    assert report.vocabulary_coverage == 0.0
    assert report.per_trace_coverage == []


def test_coverage_with_empty_traces_counts_them_as_zero_covered():
    db = SequenceDatabase.from_sequences([[], ["a", "b"]])
    report = coverage_of(db, patterns=[MinedPattern(("a", "b"), support=1)])
    assert report.per_trace_coverage == [0.0, 1.0]
    assert report.total_events == 2


def test_coverage_ignores_specification_events_never_observed():
    db = SequenceDatabase.from_sequences([["a", "b"]])
    report = coverage_of(
        db,
        patterns=[MinedPattern(("never", "seen"), support=1)],
        rules=[_rule(["ghost"], ["a"])],
    )
    # "never"/"seen"/"ghost" are mentioned but unobserved: only the
    # intersection with the observed vocabulary counts.
    assert report.covered_positions == 0
    assert report.vocabulary_coverage == pytest.approx(1 / 2)


def test_coverage_counts_overlapping_instances_once_per_position():
    # <a, b> covers 0-1 and <b, c> covers 1-2: position 1 overlaps.
    db = SequenceDatabase.from_sequences([["a", "b", "c"]])
    report = coverage_of(
        db,
        patterns=[MinedPattern(("a", "b"), support=1), MinedPattern(("b", "c"), support=1)],
    )
    assert report.covered_positions == 3
    assert report.position_coverage == pytest.approx(1.0)


def test_coverage_of_repeated_instances_of_one_pattern():
    db = SequenceDatabase.from_sequences([["a", "b", "x", "a", "b"]])
    report = coverage_of(db, patterns=[MinedPattern(("a", "b"), support=2)])
    assert report.covered_positions == 4
    assert report.per_trace_coverage == [pytest.approx(4 / 5)]


def test_report_merge_accumulates_everything():
    db = SequenceDatabase.from_sequences([["lock", "unlock"], ["lock"]])
    rule = _rule(["lock"], ["unlock"])
    monitor = RuleMonitor([rule])
    merged = monitor.check_trace(db[0], trace_index=0)
    merged.merge(monitor.check_trace(db[1], trace_index=1))
    whole = monitor.check_database(db)
    assert merged.total_points == whole.total_points == 2
    assert merged.satisfied_points == whole.satisfied_points == 1
    assert merged.violations == whole.violations
    assert merged.per_rule_points == whole.per_rule_points


def test_violations_of_and_violated_rules_with_multiple_rules():
    first = _rule(["a"], ["b"])
    second = _rule(["c"], ["d"])
    db = SequenceDatabase.from_sequences([["a", "c"], ["a", "b", "c"]])
    report = monitor_database(db, [first, second])
    assert len(report.violations_of(first)) == 1
    assert len(report.violations_of(second)) == 2
    assert report.violated_rules() == [first, second]
    assert report.violations_of(_rule(["x"], ["y"])) == []


def test_violation_describe_falls_back_to_trace_index():
    violation = monitor_database(
        SequenceDatabase.from_sequences([["a"]]), [_rule(["a"], ["b"])]
    ).violations[0]
    assert violation.trace_name is None
    assert violation.describe().startswith("trace 0@0")
