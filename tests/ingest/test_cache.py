"""Persisted record-cache tests: cross-process incremental mining.

The cache file in the store directory must make a *new*
:class:`IncrementalMiner` (a later CLI invocation, a restarted daemon)
behave exactly like the long-lived instance would have — delta re-mines
with bit-identical output — and must be discarded, never trusted, on any
store-fingerprint or configuration mismatch.
"""

import pickle

from repro.engine import WorkStealingBackend
from repro.ingest import IncrementalMiner, TraceStore
from repro.patterns.closed_miner import ClosedIterativePatternMiner, mine_closed_patterns
from repro.patterns.config import IterativeMiningConfig
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import (
    NonRedundantRecurrentRuleMiner,
    mine_non_redundant_rules,
)


def _pattern_miner(min_support=2):
    return ClosedIterativePatternMiner(IterativeMiningConfig(min_support=min_support))


def _base_store(tmp_path):
    store = TraceStore(tmp_path / "store")
    base = []
    for _ in range(3):
        for letter in "abcdefgh":
            base.append([letter, "x", letter, "x"])
    store.append_batch(base)
    return store


def test_fresh_miner_resumes_from_persisted_cache(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(), store, persist=True).refresh()

    store.append_batch([["a", "x", "a"], ["a", "a"]])
    resumed = IncrementalMiner(_pattern_miner(), store, persist=True)
    assert resumed.resumed_from_cache
    result, report = resumed.refresh()
    assert not report.full_remine
    assert 0 < report.roots_remined < report.roots_total
    assert result.patterns == mine_closed_patterns(store.snapshot(), min_support=2).patterns


def test_cache_roundtrip_without_new_batches_is_a_noop_refresh(tmp_path):
    store = _base_store(tmp_path)
    first, _ = IncrementalMiner(_pattern_miner(), store, persist=True).refresh()
    resumed = IncrementalMiner(_pattern_miner(), store, persist=True)
    result, report = resumed.refresh()
    assert report.roots_remined == 0 and not report.full_remine
    assert result.patterns == first.patterns


def test_cache_works_for_rule_miners_across_instances(tmp_path):
    store = _base_store(tmp_path)
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    IncrementalMiner(NonRedundantRecurrentRuleMiner(config), store, persist=True).refresh()
    store.append_batch([["a", "x", "a"], ["a", "x"]])
    resumed = IncrementalMiner(
        NonRedundantRecurrentRuleMiner(config), store, persist=True
    )
    assert resumed.resumed_from_cache
    result, report = resumed.refresh()
    assert not report.full_remine
    assert result.rules == mine_non_redundant_rules(
        store.snapshot(), min_s_support=2, min_confidence=0.5
    ).rules


def test_cached_records_replay_on_any_backend(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(), store, persist=True).refresh()
    store.append_batch([["a", "x", "a"]])
    backend = WorkStealingBackend(workers=1, eager_split=True, split_depth=4)
    result, report = IncrementalMiner(
        _pattern_miner(), store, backend=backend, persist=True
    ).refresh()
    assert not report.full_remine
    assert result.patterns == mine_closed_patterns(store.snapshot(), min_support=2).patterns


def test_config_mismatch_discards_the_cache(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(min_support=2), store, persist=True).refresh()
    other = IncrementalMiner(_pattern_miner(min_support=3), store, persist=True)
    assert not other.resumed_from_cache
    result, report = other.refresh()
    assert report.full_remine
    assert result.patterns == mine_closed_patterns(store.snapshot(), min_support=3).patterns


def test_miner_class_mismatch_discards_the_cache(tmp_path):
    store = _base_store(tmp_path)
    miner = _pattern_miner()
    incremental = IncrementalMiner(miner, store, persist=True)
    incremental.refresh()
    # Same path, different miner class: the identity token arbitrates.
    rule_miner = NonRedundantRecurrentRuleMiner(
        RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    )
    other = IncrementalMiner(
        rule_miner, store, cache_path=IncrementalMiner.default_cache_path(store, miner)
    )
    assert not other.resumed_from_cache


def test_store_fingerprint_mismatch_discards_the_cache(tmp_path):
    store = _base_store(tmp_path)
    cache_path = IncrementalMiner.default_cache_path(store, _pattern_miner())
    IncrementalMiner(_pattern_miner(), store, persist=True).refresh()

    # A different corpus at the same directory: rebuild the store from
    # scratch (different traces => different fingerprint chain).
    store.data_path.unlink()
    store.manifest_path.unlink()
    rebuilt = TraceStore(store.directory)
    rebuilt.append_batch([["z", "z"], ["z"]])
    assert cache_path.is_file()
    cold = IncrementalMiner(_pattern_miner(), rebuilt, persist=True)
    assert not cold.resumed_from_cache
    result, report = cold.refresh()
    assert report.full_remine
    assert result.patterns == mine_closed_patterns(rebuilt.snapshot(), min_support=2).patterns


def test_corrupt_cache_file_is_ignored(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(), store, persist=True).refresh()
    path = IncrementalMiner.default_cache_path(store, _pattern_miner())
    path.write_bytes(b"not a pickle")
    cold = IncrementalMiner(_pattern_miner(), store, persist=True)
    assert not cold.resumed_from_cache
    result, report = cold.refresh()
    assert report.full_remine
    assert result.patterns == mine_closed_patterns(store.snapshot(), min_support=2).patterns


def test_unknown_cache_version_is_ignored(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(), store, persist=True).refresh()
    path = IncrementalMiner.default_cache_path(store, _pattern_miner())
    payload = pickle.loads(path.read_bytes())
    payload["version"] = 999
    path.write_bytes(pickle.dumps(payload))
    assert not IncrementalMiner(_pattern_miner(), store, persist=True).resumed_from_cache


def test_without_persist_no_cache_file_is_written(tmp_path):
    store = _base_store(tmp_path)
    IncrementalMiner(_pattern_miner(), store).refresh()
    assert not (store.directory / "cache").exists()


def test_relative_threshold_move_invalidates_via_resolution(tmp_path):
    """A persisted cache saved at one corpus size must not survive a
    relative threshold resolving differently after more appends."""
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b"], ["a", "b"]])
    miner = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=0.5))
    IncrementalMiner(miner, store, persist=True).refresh()
    store.append_batch([["c"], ["c"]])  # threshold 1 -> 2
    resumed = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=0.5)),
        store,
        persist=True,
    )
    assert resumed.resumed_from_cache  # the prefix still matches...
    result, report = resumed.refresh()
    assert report.full_remine  # ...but the threshold move forces a full mine
    assert "threshold" in report.reason
    assert result.patterns == mine_closed_patterns(store.snapshot(), min_support=0.5).patterns


def test_config_token_is_stable_across_hash_seeds(tmp_path):
    """repr(frozenset) follows the per-process hash seed; the cache token
    must not, or persist=True would silently full-remine every process."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    script = (
        "from repro.ingest import IncrementalMiner, TraceStore\n"
        "from repro.rules.config import RuleMiningConfig\n"
        "from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner\n"
        "import sys\n"
        "store = TraceStore(sys.argv[1])\n"
        "config = RuleMiningConfig(min_s_support=2, min_confidence=0.5,\n"
        "    allowed_premise_events=frozenset({'alpha', 'beta', 'gamma', 'delta'}))\n"
        "m = IncrementalMiner(NonRedundantRecurrentRuleMiner(config), store)\n"
        "print(m._config_token())\n"
    )
    tokens = set()
    for seed in ("1", "7"):
        # The child needs the package importable even when the suite runs
        # from a source checkout via pytest's pythonpath (no env var set).
        env = {**os.environ, "PYTHONHASHSEED": seed}
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_dir, env.get("PYTHONPATH")) if part
        )
        result = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path / f"store-{seed}")],
            capture_output=True, text=True, check=True, env=env,
        )
        tokens.add(result.stdout.strip())
    assert len(tokens) == 1, tokens
    (token,) = tokens
    assert "'alpha', 'beta', 'delta', 'gamma'" in token


def test_persisted_cache_survives_across_hash_seeds_with_set_config(tmp_path):
    store = _base_store(tmp_path)
    config = RuleMiningConfig(
        min_s_support=2, min_confidence=0.5,
        allowed_premise_events=frozenset({"a", "b", "c", "x"}),
    )
    IncrementalMiner(NonRedundantRecurrentRuleMiner(config), store, persist=True).refresh()
    resumed = IncrementalMiner(
        NonRedundantRecurrentRuleMiner(
            RuleMiningConfig(
                min_s_support=2, min_confidence=0.5,
                allowed_premise_events=frozenset({"x", "c", "b", "a"}),
            )
        ),
        store,
        persist=True,
    )
    assert resumed.resumed_from_cache
