"""Streaming format adapters: round trips, laziness, gzip, error paths."""

import gzip

import pytest

from repro.core.errors import DataFormatError
from repro.core.events import EventVocabulary
from repro.ingest.formats import (
    TraceRecord,
    adapter_for,
    format_for_path,
    registered_formats,
    stream_batches,
    stream_encoded_traces,
    stream_traces,
    write_trace_records,
)

RECORDS = [
    TraceRecord(("lock", "use", "unlock"), "first"),
    TraceRecord(("lock", "unlock"), None),
    TraceRecord(("a",), "third"),
]

ALL_PATHS = [
    "traces.txt",
    "traces.trace",
    "traces.jsonl",
    "traces.csv",
    "traces.txt.gz",
    "traces.jsonl.gz",
    "traces.csv.gz",
]


@pytest.mark.parametrize("filename", ALL_PATHS)
def test_round_trip_every_format(tmp_path, filename):
    path = tmp_path / filename
    assert write_trace_records(path, RECORDS) == len(RECORDS)
    loaded = list(stream_traces(path))
    assert [record.events for record in loaded] == [record.events for record in RECORDS]
    # CSV does not carry names (it synthesises trace-N); the others do.
    if "csv" not in filename:
        assert [record.name for record in loaded] == [record.name for record in RECORDS]
    else:
        assert [record.name for record in loaded] == ["trace-0", "trace-1", "trace-2"]


def test_gz_paths_are_actually_gzip_compressed(tmp_path):
    path = tmp_path / "traces.jsonl.gz"
    write_trace_records(path, RECORDS)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        assert "lock" in handle.read()
    assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic, not plain text


def test_format_for_path_resolution():
    assert format_for_path("a.txt") == ("text", False)
    assert format_for_path("a.trace") == ("text", False)
    assert format_for_path("a.jsonl.gz") == ("jsonl", True)
    assert format_for_path("a.csv", explicit="jsonl") == ("jsonl", False)
    assert format_for_path("weird.bin", explicit="text") == ("text", False)
    with pytest.raises(DataFormatError):
        format_for_path("a.parquet")
    with pytest.raises(DataFormatError):
        format_for_path("a.txt", explicit="parquet")


def test_registry_contents():
    assert set(registered_formats()) >= {"text", "jsonl", "csv"}
    with pytest.raises(DataFormatError):
        adapter_for("nope")


def test_streaming_is_lazy(tmp_path):
    """The reader must not need the whole file: truncate it mid-stream."""
    path = tmp_path / "traces.jsonl"
    write_trace_records(path, [TraceRecord((str(i),), None) for i in range(100)])
    stream = stream_traces(path)
    first = next(stream)
    assert first.events == ("0",)
    stream.close()


def test_text_name_comments_and_blank_runs(tmp_path):
    path = tmp_path / "traces.txt"
    path.write_text("# named\na\nb\n\n\n\nc\n", encoding="utf-8")
    loaded = list(stream_traces(path))
    assert loaded == [TraceRecord(("a", "b"), "named"), TraceRecord(("c",), None)]


def test_jsonl_errors(tmp_path):
    path = tmp_path / "traces.jsonl"
    path.write_text("not json\n", encoding="utf-8")
    with pytest.raises(DataFormatError, match="line 1"):
        list(stream_traces(path))
    path.write_text('{"name": "x"}\n', encoding="utf-8")
    with pytest.raises(DataFormatError, match="not a trace record"):
        list(stream_traces(path))


def test_csv_headers_and_contiguity(tmp_path):
    path = tmp_path / "traces.csv"
    path.write_text("wrong,columns\n1,2\n", encoding="utf-8")
    with pytest.raises(DataFormatError, match="columns"):
        list(stream_traces(path))
    # Shuffled positions inside one trace are sorted back.
    path.write_text(
        "trace_id,position,event\n0,1,b\n0,0,a\n1,0,c\n", encoding="utf-8"
    )
    loaded = list(stream_traces(path))
    assert [record.events for record in loaded] == [("a", "b"), ("c",)]
    # A trace id coming back after its run ended cannot stream.
    path.write_text(
        "trace_id,position,event\n0,0,a\n1,0,b\n0,1,c\n", encoding="utf-8"
    )
    with pytest.raises(DataFormatError, match="not contiguous"):
        list(stream_traces(path))


def test_stream_encoded_traces_interns_labels(tmp_path):
    path = tmp_path / "traces.txt"
    write_trace_records(path, RECORDS)
    vocabulary = EventVocabulary()
    encoded = list(stream_encoded_traces(path, vocabulary))
    assert encoded[0].events == (0, 1, 2)
    assert encoded[1].events == (0, 2)
    assert vocabulary.labels() == ("lock", "use", "unlock", "a")


def test_stream_batches_chunking():
    batches = list(stream_batches(range(7), batch_size=3))
    assert batches == [[0, 1, 2], [3, 4, 5], [6]]
    assert list(stream_batches([], batch_size=3)) == []
    with pytest.raises(DataFormatError):
        list(stream_batches(range(3), batch_size=0))
