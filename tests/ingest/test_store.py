"""TraceStore: append-only persistence, manifest integrity, snapshots."""

import json

import pytest

from repro.core.errors import DataFormatError
from repro.ingest.formats import EncodedTrace, TraceRecord, write_trace_records
from repro.ingest.store import TraceStore


def test_append_iter_snapshot_round_trip(tmp_path):
    store = TraceStore(tmp_path / "store")
    info = store.append_batch(
        [TraceRecord(("lock", "use", "unlock"), "t0"), ["lock", "unlock"]]
    )
    assert info.index == 0 and info.traces == 2 and info.events == 5
    assert info.alphabet == (0, 1, 2)

    traces = list(store.iter_traces())
    assert traces == [EncodedTrace((0, 1, 2), "t0"), EncodedTrace((0, 2), None)]

    database = store.snapshot()
    assert len(database) == 2
    assert database[0] == ("lock", "use", "unlock")
    assert database.name(0) == "t0"
    assert database.name(1) is None


def test_fingerprints_chain_and_batches_accumulate(tmp_path):
    store = TraceStore(tmp_path / "store")
    assert store.fingerprint == ""
    first = store.append_batch([["a", "b"]])
    second = store.append_batch([["b", "c"]])
    assert first.fingerprint != second.fingerprint
    assert store.fingerprint == second.fingerprint
    assert len(store) == 2
    assert store.total_events() == 4
    assert store.alphabet_since(0) == (0, 1, 2)
    assert store.alphabet_since(1) == (1, 2)
    assert store.alphabet_since(2) == ()

    # Identical content appended in a different order fingerprints differently.
    other = TraceStore(tmp_path / "other")
    other.append_batch([["b", "c"]])
    other.append_batch([["a", "b"]])
    assert other.fingerprint != store.fingerprint


def test_reopen_preserves_everything(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([TraceRecord(("x", "y"), "named")])
    store.append_batch([["y", "z"]])

    reopened = TraceStore.open(tmp_path / "store")
    assert reopened.vocabulary.labels() == ("x", "y", "z")
    assert [batch.fingerprint for batch in reopened.batches] == [
        batch.fingerprint for batch in store.batches
    ]
    assert list(reopened.iter_traces()) == list(store.iter_traces())

    # And appending to the reopened store continues the chain.
    reopened.append_batch([["z"]])
    assert len(reopened) == 3


def test_open_missing_store_fails(tmp_path):
    with pytest.raises(DataFormatError):
        TraceStore.open(tmp_path / "nowhere")


def test_partial_batch_reads(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a"]])
    store.append_batch([["b"]])
    store.append_batch([["c"]])
    assert [trace.events for trace in store.iter_traces(start_batch=1)] == [(1,), (2,)]
    assert len(store.snapshot(stop_batch=2)) == 2


def test_torn_append_is_tolerated_but_corruption_is_not(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b", "a"]])
    # Trailing bytes the manifest does not know about: a torn append, fine.
    with open(store.data_path, "ab") as handle:
        handle.write(b"garbage")
    reopened = TraceStore.open(tmp_path / "store")
    assert [trace.events for trace in reopened.iter_traces()] == [(0, 1, 0)]
    # Appending overwrites the torn tail — offsets stay manifest-true.
    reopened.append_batch([["b", "b"]])
    assert [trace.events for trace in reopened.iter_traces()] == [(0, 1, 0), (1, 1)]
    assert reopened.data_path.stat().st_size == reopened._data_size()
    # A data file *shorter* than the manifest promises is corruption.
    store.data_path.write_bytes(b"\x00")
    with pytest.raises(DataFormatError, match="bytes"):
        TraceStore.open(tmp_path / "store")


def test_append_batch_is_atomic_when_the_source_raises(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b"]])
    fingerprint = store.fingerprint

    def exploding_traces():
        yield ["a", "a"]
        raise DataFormatError("bad line")

    with pytest.raises(DataFormatError):
        store.append_batch(exploding_traces())
    assert len(store.batches) == 1 and store.fingerprint == fingerprint
    # The torn bytes are invisible and overwritten by the next append.
    store.append_batch([["b", "b"]])
    assert [trace.events for trace in store.iter_traces()] == [(0, 1), (1, 1)]
    reopened = TraceStore.open(tmp_path / "store")
    assert [trace.events for trace in reopened.iter_traces()] == [(0, 1), (1, 1)]


def test_failed_append_rolls_back_interned_labels(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a"]])

    def exploding_traces():
        yield ["phantom-1", "phantom-2"]
        raise DataFormatError("bad line")

    with pytest.raises(DataFormatError):
        store.append_batch(exploding_traces())
    assert store.vocabulary.labels() == ("a",)
    store.append_batch([["b"]])
    assert store.vocabulary.labels() == ("a", "b")
    assert TraceStore.open(tmp_path / "store").vocabulary.labels() == ("a", "b")


def test_append_batches_commits_all_or_nothing(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a"]])
    fingerprint = store.fingerprint

    def chunks():
        yield [["a", "b"]]
        yield [["b", "c"]]
        raise DataFormatError("bad chunk")

    with pytest.raises(DataFormatError):
        store.append_batches(chunks())
    # Nothing committed: in-memory state rolled back, manifest untouched.
    assert len(store.batches) == 1 and store.fingerprint == fingerprint
    assert len(TraceStore.open(tmp_path / "store").batches) == 1

    infos = store.append_batches([[["a", "b"]], [["b", "c"]]])
    assert [info.index for info in infos] == [1, 2]
    assert len(store) == 3


def test_encoded_traces_must_use_known_ids(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b"]])
    store.append_batch([EncodedTrace((0, 1), "ok")])
    with pytest.raises(DataFormatError, match="unknown event id"):
        store.append_batch([EncodedTrace((7,), "bad")])


def test_append_trace_file_streams_any_format(tmp_path):
    records = [TraceRecord(("a", "b"), None), TraceRecord(("b", "c"), None)]
    path = tmp_path / "traces.jsonl.gz"
    write_trace_records(path, records)
    store = TraceStore(tmp_path / "store")
    info = store.append_trace_file(path)
    assert info.traces == 2 and info.events == 4
    assert store.snapshot()[1] == ("b", "c")


def test_snapshot_vocabulary_is_isolated(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a"]])
    database = store.snapshot()
    database.add(["brand-new-label"])
    assert "brand-new-label" not in store.vocabulary
    store.append_batch([["other"]])
    assert len(database.vocabulary) == 2  # unaffected by store growth


def test_manifest_is_json_with_version(tmp_path):
    store = TraceStore(tmp_path / "store")
    store.append_batch([["a"]])
    payload = json.loads(store.manifest_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["labels"] == ["a"]
    assert len(payload["batches"]) == 1
    description = store.describe()
    assert description["traces"] == 1 and description["batches"] == 1

def test_manifest_write_failure_rolls_back_the_append(tmp_path):
    """The store.manifest fault point: an ENOSPC between writing the batch
    payload and replacing the manifest must leave memory and disk agreed
    on the pre-append state (and the next append must succeed)."""
    from repro.testing import faults

    store = TraceStore(tmp_path / "store")
    store.append_batch([["a", "b"]])
    fingerprint = store.fingerprint
    faults.install("store.manifest", "enospc")
    try:
        with pytest.raises(OSError):
            store.append_batch([["b", "c", "d"]])
    finally:
        faults.reset()
    assert len(store.batches) == 1 and store.fingerprint == fingerprint
    assert store.vocabulary.labels() == ("a", "b")
    assert len(TraceStore.open(tmp_path / "store").batches) == 1
    # The rolled-back store keeps working, in memory and on disk.
    info = store.append_batch([["b", "c"]])
    assert info.index == 1
    assert TraceStore.open(tmp_path / "store").vocabulary.labels() == ("a", "b", "c")


def test_batch_source_round_trips_and_is_queryable(tmp_path):
    store = TraceStore(tmp_path / "store")
    source = {"path": "/inputs/run1.txt", "sha256": "ab" * 32}
    store.append_batches([[["a", "b"]]], source=source)
    store.append_batch([["b", "c"]])
    assert store.has_source(source)
    assert not store.has_source({"path": "/inputs/run2.txt", "sha256": "cd" * 32})
    reopened = TraceStore.open(tmp_path / "store")
    assert reopened.has_source(source)
    assert reopened.batches[0].source == source
    assert reopened.batches[1].source is None
