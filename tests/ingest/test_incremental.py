"""Incremental mining parity: delta re-mines must be invisible in the output.

The contract of :class:`IncrementalMiner` is the same as the engine's: how
the result was computed (from scratch, or by re-mining only the touched
roots and merging cached records) must not be observable.  The hypothesis
suite drives random databases and random append batches through refresh
after refresh, comparing every intermediate result against a from-scratch
mine of the store's snapshot — for full patterns, closed patterns and both
rule miners, on the serial, process-pool and work-stealing backends.
"""

import tempfile

from hypothesis import given, settings, strategies as st

from repro.engine import ProcessPoolBackend, WorkStealingBackend
from repro.ingest import IncrementalMiner, TraceStore
from repro.patterns.closed_miner import ClosedIterativePatternMiner, mine_closed_patterns
from repro.patterns.config import IterativeMiningConfig
from repro.patterns.full_miner import FullIterativePatternMiner, mine_frequent_patterns
from repro.rules.config import RuleMiningConfig
from repro.rules.full_miner import FullRecurrentRuleMiner, mine_all_rules
from repro.rules.nonredundant_miner import (
    NonRedundantRecurrentRuleMiner,
    mine_non_redundant_rules,
)

trace_strategy = st.lists(
    st.integers(min_value=0, max_value=4).map(str), min_size=1, max_size=10
)
batches_strategy = st.lists(
    st.lists(trace_strategy, min_size=1, max_size=4), min_size=1, max_size=4
)


def _check_parity(batches, miner, full_miner_fn, result_attr, backend=None):
    """Append batch by batch; every refresh must match a from-scratch mine."""
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(tmp + "/store")
        incremental = IncrementalMiner(miner, store, backend=backend)
        for batch in batches:
            store.append_batch(batch)
            result, report = incremental.refresh()
            full = full_miner_fn(store.snapshot())
            assert getattr(result, result_attr) == getattr(full, result_attr)
            assert report.traces_total == len(store)


# --------------------------------------------------------------------- #
# Serial backend: cheap enough to run on every example.
# --------------------------------------------------------------------- #
@given(batches=batches_strategy)
@settings(max_examples=40, deadline=None)
def test_incremental_closed_patterns_match_full(batches):
    _check_parity(
        batches,
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)),
        lambda db: mine_closed_patterns(db, min_support=2),
        "patterns",
    )


@given(batches=batches_strategy)
@settings(max_examples=30, deadline=None)
def test_incremental_full_patterns_match_full(batches):
    _check_parity(
        batches,
        FullIterativePatternMiner(IterativeMiningConfig(min_support=2)),
        lambda db: mine_frequent_patterns(db, min_support=2),
        "patterns",
    )


@given(batches=batches_strategy)
@settings(max_examples=30, deadline=None)
def test_incremental_nonredundant_rules_match_full(batches):
    _check_parity(
        batches,
        NonRedundantRecurrentRuleMiner(
            RuleMiningConfig(min_s_support=2, min_confidence=0.5)
        ),
        lambda db: mine_non_redundant_rules(db, min_s_support=2, min_confidence=0.5),
        "rules",
    )


@given(batches=batches_strategy)
@settings(max_examples=20, deadline=None)
def test_incremental_all_rules_match_full(batches):
    _check_parity(
        batches,
        FullRecurrentRuleMiner(RuleMiningConfig(min_s_support=2, min_confidence=0.5)),
        lambda db: mine_all_rules(db, min_s_support=2, min_confidence=0.5),
        "rules",
    )


@given(batches=batches_strategy)
@settings(max_examples=20, deadline=None)
def test_incremental_with_relative_threshold(batches):
    """Relative thresholds move with the database size and force full re-mines."""
    _check_parity(
        batches,
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=0.6)),
        lambda db: mine_closed_patterns(db, min_support=0.6),
        "patterns",
    )


@given(batches=batches_strategy)
@settings(max_examples=15, deadline=None)
def test_incremental_with_collected_instances(batches):
    _check_parity(
        batches,
        ClosedIterativePatternMiner(
            IterativeMiningConfig(min_support=2, collect_instances=True)
        ),
        lambda db: mine_closed_patterns(db, min_support=2, collect_instances=True),
        "patterns",
    )


# --------------------------------------------------------------------- #
# Work-stealing backend, in-process eager splitting: every unit boundary
# is exercised without paying for worker processes.
# --------------------------------------------------------------------- #
@given(batches=batches_strategy)
@settings(max_examples=15, deadline=None)
def test_incremental_parity_on_stealing_backend(batches):
    backend = WorkStealingBackend(workers=1, eager_split=True, split_depth=4)
    _check_parity(
        batches,
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)),
        lambda db: mine_closed_patterns(db, min_support=2),
        "patterns",
        backend=backend,
    )
    _check_parity(
        batches,
        NonRedundantRecurrentRuleMiner(
            RuleMiningConfig(min_s_support=2, min_confidence=0.5)
        ),
        lambda db: mine_non_redundant_rules(db, min_s_support=2, min_confidence=0.5),
        "rules",
        backend=backend,
    )


# --------------------------------------------------------------------- #
# Real process pool: fewer examples (each refresh forks workers).
# --------------------------------------------------------------------- #
@given(batches=st.lists(st.lists(trace_strategy, min_size=1, max_size=3), min_size=2, max_size=2))
@settings(max_examples=3, deadline=None)
def test_incremental_parity_on_process_backend(batches):
    backend = ProcessPoolBackend(workers=2)
    _check_parity(
        batches,
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)),
        lambda db: mine_closed_patterns(db, min_support=2),
        "patterns",
        backend=backend,
    )
    _check_parity(
        batches,
        NonRedundantRecurrentRuleMiner(
            RuleMiningConfig(min_s_support=2, min_confidence=0.5)
        ),
        lambda db: mine_non_redundant_rules(db, min_s_support=2, min_confidence=0.5),
        "rules",
        backend=backend,
    )


# --------------------------------------------------------------------- #
# Deterministic behaviour checks.
# --------------------------------------------------------------------- #
def _skewed_store(tmp):
    """A base corpus over a wide alphabet plus an append touching few roots."""
    store = TraceStore(tmp + "/store")
    base = []
    for repeat in range(3):
        for letter in "abcdefgh":
            base.append([letter, "x", letter, "x"])
    store.append_batch(base)
    return store


def test_skewed_append_remines_strictly_fewer_roots(tmp_path):
    store = _skewed_store(str(tmp_path))
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)), store
    )
    _, first = miner.refresh()
    assert first.full_remine and first.roots_remined == first.roots_total

    store.append_batch([["a", "x", "a"], ["a", "a"]])
    result, report = miner.refresh()
    assert not report.full_remine
    assert 0 < report.roots_remined < report.roots_total
    full = mine_closed_patterns(store.snapshot(), min_support=2)
    assert result.patterns == full.patterns


def test_refresh_without_new_batches_remines_nothing(tmp_path):
    store = _skewed_store(str(tmp_path))
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)), store
    )
    first_result, first_report = miner.refresh()
    second_result, report = miner.refresh()
    assert report.roots_remined == 0
    assert report.roots_total == first_report.roots_total
    assert report.traces_added == 0
    assert not report.full_remine
    assert second_result.patterns == first_result.patterns


def test_noop_refresh_never_touches_the_backend(tmp_path):
    """A polling caller with nothing dirty must not pay for the engine."""

    class ExplodingBackend:
        def execute(self, runner):
            raise AssertionError("backend used for a no-op refresh")

    store = _skewed_store(str(tmp_path))
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)), store
    )
    first_result, _ = miner.refresh()
    result, report = miner.refresh(backend=ExplodingBackend())
    assert report.roots_remined == 0
    assert result.patterns == first_result.patterns


def test_relative_threshold_move_reports_full_remine(tmp_path):
    store = TraceStore(str(tmp_path / "store"))
    store.append_batch([["a", "b"], ["a", "b"]])
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=0.5)), store
    )
    miner.refresh()
    store.append_batch([["c"], ["c"]])  # database doubles; threshold 1 -> 2
    _, report = miner.refresh()
    assert report.full_remine
    assert "threshold" in report.reason


def test_new_premise_filter_labels_force_full_remine(tmp_path):
    store = TraceStore(str(tmp_path / "store"))
    store.append_batch([["a", "b"], ["a", "b"]])
    config = RuleMiningConfig(
        min_s_support=2, min_confidence=0.5, allowed_premise_events=frozenset({"a", "z"})
    )
    miner = IncrementalMiner(NonRedundantRecurrentRuleMiner(config), store)
    miner.refresh()
    store.append_batch([["z", "b"], ["z", "b"]])  # "z" now resolves to an id
    result, report = miner.refresh()
    assert report.full_remine
    full = mine_non_redundant_rules(
        store.snapshot(),
        min_s_support=2,
        min_confidence=0.5,
        allowed_premise_events=frozenset({"a", "z"}),
    )
    assert result.rules == full.rules


def test_incremental_miner_rejects_non_protocol_miners(tmp_path):
    from repro.core.errors import ConfigurationError
    import pytest

    store = TraceStore(str(tmp_path / "store"))
    with pytest.raises(ConfigurationError, match="incremental mining protocol"):
        IncrementalMiner(object(), store)


def test_failed_refresh_keeps_roots_dirty_for_the_retry(tmp_path):
    """A refresh that dies mid-mine must not mark its batches as mined."""

    class ExplodingBackend:
        def execute(self, runner):
            raise RuntimeError("worker lost")

    store = _skewed_store(str(tmp_path))
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)), store
    )
    miner.refresh()
    store.append_batch([["a", "x", "a"], ["a", "a"]])
    try:
        miner.refresh(backend=ExplodingBackend())
    except RuntimeError:
        pass
    result, report = miner.refresh()  # retry on the default serial backend
    assert report.roots_remined > 0
    full = mine_closed_patterns(store.snapshot(), min_support=2)
    assert result.patterns == full.patterns


def test_live_index_is_extended_not_rebuilt(tmp_path):
    """The kept-alive context's PositionIndex grows in place across appends."""
    store = _skewed_store(str(tmp_path))
    miner = IncrementalMiner(
        ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2)), store
    )
    miner.refresh()
    context = miner._context
    index_before = context._index
    assert index_before is not None
    store.append_batch([["a", "x"]])
    miner.refresh()
    assert miner._context is context
    assert context._index is index_before
    assert len(index_before) == len(store)
