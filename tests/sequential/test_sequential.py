"""Tests for the sequential pattern mining baselines (PrefixSpan, closed, two-event rules)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.pattern import is_subsequence
from repro.core.sequence import SequenceDatabase
from repro.sequential.closed import closed_filter, mine_closed_sequential_patterns
from repro.sequential.prefixspan import PrefixSpan, mine_sequential_patterns
from repro.sequential.rules import TwoEventRuleMiner, mine_two_event_rules


@pytest.fixture
def simple_db():
    return SequenceDatabase.from_sequences(
        [
            ["a", "b", "c"],
            ["a", "c", "b"],
            ["a", "b", "c", "b"],
        ]
    )


def test_prefixspan_sequence_supports(simple_db):
    result = mine_sequential_patterns(simple_db, min_support=2)
    assert result.support_of(("a",)) == 3
    assert result.support_of(("a", "b")) == 3
    assert result.support_of(("a", "c")) == 3
    assert result.support_of(("a", "b", "c")) == 2
    assert result.support_of(("c", "b")) == 2
    assert result.support_of(("b", "a")) is None  # never occurs in order


def test_prefixspan_counts_sequences_not_repetitions():
    db = SequenceDatabase.from_sequences([["a", "b", "a", "b"]])
    result = mine_sequential_patterns(db, min_support=1)
    # The pattern repeats twice within the sequence but sequence support is 1.
    assert result.support_of(("a", "b")) == 1


def test_prefixspan_results_are_genuine_subsequences(simple_db):
    result = mine_sequential_patterns(simple_db, min_support=2)
    sequences = list(simple_db)
    for pattern in result:
        supporting = sum(1 for sequence in sequences if is_subsequence(pattern.events, sequence))
        assert supporting == pattern.support


def test_prefixspan_max_length(simple_db):
    result = mine_sequential_patterns(simple_db, min_support=2, max_length=2)
    assert all(len(pattern) <= 2 for pattern in result)


def test_prefixspan_invalid_configuration():
    with pytest.raises(ConfigurationError):
        PrefixSpan(min_support=0)
    with pytest.raises(ConfigurationError):
        PrefixSpan(min_support=2, max_length=0)


def test_closed_filter_keeps_maximal_same_support_patterns(simple_db):
    full = mine_sequential_patterns(simple_db, min_support=2)
    closed = closed_filter(full)
    closed_events = {pattern.events for pattern in closed}
    # <a> (support 3) is absorbed by <a, b> and <a, c> which also have support 3.
    assert ("a",) not in closed_events
    assert ("a", "b") in closed_events
    # Every full pattern has a closed super-pattern with the same support.
    for pattern in full:
        assert any(
            is_subsequence(pattern.events, closed_pattern.events)
            and closed_pattern.support == pattern.support
            for closed_pattern in closed
        )


def test_mine_closed_sequential_patterns_smaller_than_full(simple_db):
    full = mine_sequential_patterns(simple_db, min_support=2)
    closed = mine_closed_sequential_patterns(simple_db, min_support=2)
    assert 0 < len(closed) <= len(full)


def test_two_event_rules_lock_unlock():
    db = SequenceDatabase.from_sequences(
        [
            ["lock", "use", "unlock"],
            ["lock", "unlock", "lock", "unlock"],
            ["open", "close"],
        ]
    )
    result = mine_two_event_rules(db, min_s_support=2, min_confidence=0.9)
    signatures = {(rule.premise, rule.consequent) for rule in result}
    assert (("lock",), ("unlock",)) in signatures
    assert all(len(rule.premise) == 1 and len(rule.consequent) == 1 for rule in result)


def test_two_event_rules_confidence_threshold():
    db = SequenceDatabase.from_sequences([["a", "b"], ["a", "c"], ["a", "b"]])
    permissive = mine_two_event_rules(db, min_s_support=2, min_confidence=0.5)
    strict = mine_two_event_rules(db, min_s_support=2, min_confidence=0.9)
    assert len(strict) <= len(permissive)
    assert all(rule.confidence >= 0.9 for rule in strict)


def test_two_event_rule_statistics_match_recurrent_semantics():
    db = SequenceDatabase.from_sequences([["a", "b", "a"], ["a", "b"]])
    result = mine_two_event_rules(db, min_s_support=2, min_confidence=0.5)
    rule = next(r for r in result if r.premise == ("a",) and r.consequent == ("b",))
    assert rule.s_support == 2
    assert rule.i_support == 2
    assert rule.confidence == pytest.approx(2 / 3)


def test_two_event_miner_configuration_validation():
    with pytest.raises(ConfigurationError):
        TwoEventRuleMiner(min_s_support=0)
    with pytest.raises(ConfigurationError):
        TwoEventRuleMiner(min_confidence=0)
    with pytest.raises(ConfigurationError):
        TwoEventRuleMiner(min_i_support=0)


def test_two_event_miner_counts_candidates():
    db = SequenceDatabase.from_sequences([["a", "b", "c"]])
    miner = TwoEventRuleMiner(min_s_support=1, min_confidence=0.5)
    result = miner.mine(db)
    assert result.candidates_examined == 3  # (a,b), (a,c), (b,c)
