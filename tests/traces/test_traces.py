"""Tests for the trace framework: events, collection, instrumentation, IO, test suites."""

import pytest

from repro.core.errors import ConfigurationError, DataFormatError
from repro.core.sequence import SequenceDatabase
from repro.traces.event_model import MethodCallEvent, event_label, split_label
from repro.traces.instrument import instrument
from repro.traces.io import read_traces, write_traces
from repro.traces.testsuite import TestCase, TestSuiteRunner
from repro.traces.trace import Trace, TraceCollector, database_to_traces, traces_to_database


# --------------------------------------------------------------------- #
# Event model
# --------------------------------------------------------------------- #
def test_method_call_event_label_and_parse():
    event = MethodCallEvent("TxManager", "begin")
    assert event.label == "TxManager.begin"
    assert str(event) == "TxManager.begin"
    assert MethodCallEvent.parse("TxManager.begin") == event
    assert MethodCallEvent.parse("TxManager.begin()") == event
    assert split_label("A.B.method").class_name == "A.B"
    assert event_label("Subject", "doAsPrivileged") == "Subject.doAsPrivileged"


def test_method_call_event_parse_errors():
    with pytest.raises(DataFormatError):
        MethodCallEvent.parse("nodotevent")
    with pytest.raises(DataFormatError):
        MethodCallEvent.parse(".method")


# --------------------------------------------------------------------- #
# Traces and collection
# --------------------------------------------------------------------- #
def test_trace_append_and_record_call():
    trace = Trace(name="t")
    trace.append("a")
    trace.record_call("Lock", "acquire")
    assert trace.as_tuple() == ("a", "Lock.acquire")
    assert len(trace) == 2
    assert trace[1] == "Lock.acquire"


def test_collector_lifecycle_and_database_conversion():
    collector = TraceCollector()
    with collector.trace("first"):
        collector.record("a")
        collector.record_call("C", "m")
    with collector.trace("second"):
        collector.record("b")
    assert len(collector) == 2
    db = collector.to_database()
    assert len(db) == 2
    assert db[0] == ("a", "C.m")
    assert db.name(1) == "second"


def test_collector_errors_on_misuse():
    collector = TraceCollector()
    with pytest.raises(DataFormatError):
        collector.record("a")  # no active trace
    collector.start_trace("t")
    with pytest.raises(DataFormatError):
        collector.start_trace("nested")
    collector.end_trace()
    with pytest.raises(DataFormatError):
        collector.end_trace()


def test_traces_database_round_trip():
    traces = [Trace(events=["a", "b"], name="x"), Trace(events=["c"], name="y")]
    db = traces_to_database(traces)
    rebuilt = database_to_traces(db)
    assert [trace.events for trace in rebuilt] == [["a", "b"], ["c"]]
    assert [trace.name for trace in rebuilt] == ["x", "y"]


# --------------------------------------------------------------------- #
# Instrumentation
# --------------------------------------------------------------------- #
class _Resource:
    def __init__(self):
        self.closed = False

    def read(self, amount):
        return f"data[{amount}]"

    def close(self):
        self.closed = True
        return True

    def _internal(self):
        return "hidden"


def test_instrument_records_public_method_calls():
    collector = TraceCollector()
    resource = _Resource()
    proxy = instrument(resource, collector)
    with collector.trace("run"):
        assert proxy.read(4) == "data[4]"
        proxy.close()
    assert collector.traces[0].events == ["_Resource.read", "_Resource.close"]
    assert resource.closed is True


def test_instrument_respects_class_name_override_and_exclusions():
    collector = TraceCollector()
    proxy = instrument(_Resource(), collector, class_name="Stream", excluded_methods={"close"})
    with collector.trace("run"):
        proxy.read(1)
        proxy.close()
    assert collector.traces[0].events == ["Stream.read"]


def test_instrument_does_not_record_private_methods_or_attributes():
    collector = TraceCollector()
    resource = _Resource()
    proxy = instrument(resource, collector)
    with collector.trace("run"):
        assert proxy._internal() == "hidden"
        assert proxy.closed is False
    assert collector.traces[0].events == []


def test_instrument_setattr_passes_through():
    collector = TraceCollector()
    resource = _Resource()
    proxy = instrument(resource, collector)
    proxy.closed = True
    assert resource.closed is True


# --------------------------------------------------------------------- #
# IO
# --------------------------------------------------------------------- #
@pytest.fixture
def io_db():
    db = SequenceDatabase()
    db.add(["A.m", "B.n", "A.m"], name="trace-a")
    db.add(["C.p"], name="trace-b")
    return db


@pytest.mark.parametrize(
    "suffix,format",
    [
        (".txt", None),
        (".jsonl", None),
        (".csv", None),
        (".trace", "text"),
        (".txt.gz", None),
        (".jsonl.gz", None),
        (".csv.gz", None),
        (".gz", "jsonl"),
    ],
)
def test_trace_io_round_trip(tmp_path, io_db, suffix, format):
    path = tmp_path / f"traces{suffix}"
    write_traces(io_db, path, format=format)
    loaded = read_traces(path, format=format)
    assert list(loaded) == list(io_db)


def test_text_format_keeps_names(tmp_path, io_db):
    path = tmp_path / "traces.txt"
    write_traces(io_db, path)
    loaded = read_traces(path)
    assert loaded.name(0) == "trace-a"
    assert loaded.name(1) == "trace-b"


def test_unknown_format_rejected(tmp_path, io_db):
    with pytest.raises(DataFormatError):
        write_traces(io_db, tmp_path / "traces.xyz")
    with pytest.raises(DataFormatError):
        write_traces(io_db, tmp_path / "traces.txt", format="parquet")


def test_malformed_jsonl_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n", encoding="utf-8")
    with pytest.raises(DataFormatError):
        read_traces(path)


def test_malformed_csv_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("wrong,columns\n1,2\n", encoding="utf-8")
    with pytest.raises(DataFormatError):
        read_traces(path)


def test_csv_out_of_order_trace_ids_load_sorted(tmp_path):
    """Whole-file CSV reads keep the historical sorted-by-trace_id order."""
    path = tmp_path / "shuffled.csv"
    path.write_text(
        "trace_id,position,event\n2,0,c\n2,1,d\n1,0,a\n1,1,b\n", encoding="utf-8"
    )
    loaded = read_traces(path)
    assert list(loaded) == [("a", "b"), ("c", "d")]
    assert loaded.name(0) == "trace-1"


def test_csv_interleaved_rows_and_negative_ids(tmp_path):
    """The whole-file reader buffers: interleaved rows and any int id work."""
    path = tmp_path / "interleaved.csv"
    path.write_text(
        "trace_id,position,event\n1,0,a\n-5,0,x\n1,1,b\n-5,1,y\n", encoding="utf-8"
    )
    loaded = read_traces(path)
    assert list(loaded) == [("x", "y"), ("a", "b")]
    assert loaded.name(0) == "trace--5"


# --------------------------------------------------------------------- #
# Test-suite runner
# --------------------------------------------------------------------- #
def test_test_suite_runner_produces_one_trace_per_repetition():
    runner = TestSuiteRunner()
    runner.add("ping", lambda collector, i: collector.record(f"ping-{i}"), repetitions=3)
    runner.add("pong", lambda collector, i: collector.record("pong"))
    db = runner.run()
    assert len(db) == 4
    assert db.name(0) == "ping#0"
    assert db.name(3) == "pong"
    assert db[2] == ("ping-2",)


def test_test_suite_runner_rejects_empty_suite_and_bad_repetitions():
    with pytest.raises(ConfigurationError):
        TestSuiteRunner().run()
    with pytest.raises(ConfigurationError):
        TestCase(name="x", run=lambda c, i: None, repetitions=0)
