"""Tests for the QUEST-style generator, profiles and noise utilities."""

import pytest

from repro.core.errors import ConfigurationError
from repro.datagen.noise import (
    drop_events,
    inject_noise_events,
    interleave_databases,
    shuffle_windows,
)
from repro.datagen.profiles import (
    PAPER_PROFILE,
    available_profiles,
    generate_profile,
    profile,
    scaled_profile,
)
from repro.datagen.quest import QuestConfig, generate_quest_database
from repro.core.sequence import SequenceDatabase


def _small_config(**overrides):
    defaults = dict(
        num_sequences=50,
        avg_sequence_length=12,
        num_events=40,
        avg_pattern_length=4,
        num_patterns=10,
        seed=3,
    )
    defaults.update(overrides)
    return QuestConfig(**defaults)


def test_generator_produces_requested_number_of_sequences():
    db = generate_quest_database(_small_config())
    assert len(db) == 50
    assert all(len(db[i]) >= 1 for i in range(len(db)))


def test_generator_average_length_is_close_to_c():
    db = generate_quest_database(_small_config(num_sequences=300))
    assert 8 <= db.average_length() <= 16


def test_generator_alphabet_is_bounded_by_n():
    db = generate_quest_database(_small_config())
    assert db.alphabet_size() <= 40
    assert all(str(label).startswith("e") for label in db.labels())


def test_generator_is_deterministic_for_a_seed():
    first = generate_quest_database(_small_config(seed=11))
    second = generate_quest_database(_small_config(seed=11))
    assert list(first) == list(second)
    third = generate_quest_database(_small_config(seed=12))
    assert list(first) != list(third)


def test_generator_plants_repeated_patterns():
    # With low corruption and noise, some subsequence of length >= 2 must
    # appear in many sequences (the planted frequent patterns).
    from repro.sequential.prefixspan import mine_sequential_patterns

    db = generate_quest_database(
        _small_config(corruption_probability=0.1, noise_probability=0.05, num_sequences=80)
    )
    result = mine_sequential_patterns(db, min_support=8, max_length=2)
    assert any(len(pattern) >= 2 for pattern in result)


def test_quest_config_validation():
    with pytest.raises(ConfigurationError):
        QuestConfig(num_sequences=0)
    with pytest.raises(ConfigurationError):
        QuestConfig(avg_pattern_length=1)
    with pytest.raises(ConfigurationError):
        QuestConfig(noise_probability=1.5)


def test_config_describe_matches_paper_naming():
    config = QuestConfig(
        num_sequences=5000, avg_sequence_length=20, num_events=10000, avg_pattern_length=20
    )
    assert config.describe() == "D5C20N10S20"


def test_paper_profile_exists_and_matches_parameters():
    config = profile(PAPER_PROFILE)
    assert config.num_sequences == 5000
    assert config.avg_sequence_length == 20
    assert config.num_events == 10000
    assert config.avg_pattern_length == 20
    assert PAPER_PROFILE in available_profiles()


def test_profile_parsing_of_arbitrary_names():
    config = profile("D2C15N1S6")
    assert config.num_sequences == 2000
    assert config.avg_sequence_length == 15
    assert config.num_events == 1000
    assert config.avg_pattern_length == 6


def test_unknown_profile_rejected():
    with pytest.raises(ConfigurationError):
        profile("not-a-profile")


def test_scaled_profile_scales_d_and_n_only():
    scaled = scaled_profile(PAPER_PROFILE, scale=0.01)
    assert scaled.num_sequences == 50
    assert scaled.num_events == 100
    assert scaled.avg_sequence_length == 20
    assert scaled.avg_pattern_length == 20
    with pytest.raises(ConfigurationError):
        scaled_profile(PAPER_PROFILE, scale=0)


def test_generate_profile_returns_database():
    db = generate_profile(PAPER_PROFILE, scale=0.01, seed=5)
    assert len(db) == 50


# --------------------------------------------------------------------- #
# Noise utilities
# --------------------------------------------------------------------- #
def _toy_db():
    return SequenceDatabase.from_sequences([["a", "b", "c"], ["d", "e"]])


def test_inject_noise_preserves_original_order():
    noisy = inject_noise_events(_toy_db(), ["N1", "N2"], probability=1.0, seed=1)
    for index, original in enumerate(_toy_db()):
        filtered = [event for event in noisy[index] if event in original]
        assert tuple(filtered) == original
        assert len(noisy[index]) == 2 * len(original)


def test_inject_noise_requires_noise_events():
    with pytest.raises(ConfigurationError):
        inject_noise_events(_toy_db(), [], probability=0.5)


def test_drop_events_never_empties_a_sequence():
    dropped = drop_events(_toy_db(), probability=1.0, seed=2)
    assert all(len(dropped[i]) >= 1 for i in range(len(dropped)))
    untouched = drop_events(_toy_db(), probability=0.0)
    assert list(untouched) == list(_toy_db())


def test_shuffle_windows_preserves_multiset():
    shuffled = shuffle_windows(_toy_db(), window=2, probability=1.0, seed=3)
    for index, original in enumerate(_toy_db()):
        assert sorted(shuffled[index]) == sorted(original)


def test_shuffle_windows_validation():
    with pytest.raises(ConfigurationError):
        shuffle_windows(_toy_db(), window=1)


def test_interleave_databases_preserves_relative_order():
    first = SequenceDatabase.from_sequences([["a1", "a2", "a3"]])
    second = SequenceDatabase.from_sequences([["b1", "b2"]])
    merged = interleave_databases(first, second, seed=4)
    assert len(merged) == 1
    events = list(merged[0])
    assert [e for e in events if e.startswith("a")] == ["a1", "a2", "a3"]
    assert [e for e in events if e.startswith("b")] == ["b1", "b2"]
    assert len(events) == 5
