"""Tests for the RecurrentRule value type and Definition 5.2 redundancy."""

import pytest

from repro.core.errors import PatternError
from repro.rules.rule import RecurrentRule


def _rule(premise, consequent, s=2, i=3, c=0.8):
    return RecurrentRule(
        premise=tuple(premise), consequent=tuple(consequent), s_support=s, i_support=i, confidence=c
    )


def test_rule_requires_nonempty_sides():
    with pytest.raises(PatternError):
        _rule((), ("a",))
    with pytest.raises(PatternError):
        _rule(("a",), ())


def test_events_concatenation_and_length():
    rule = _rule(("a", "b"), ("c",))
    assert rule.events == ("a", "b", "c")
    assert len(rule) == 3


def test_string_rendering_mentions_statistics():
    text = str(_rule(("lock",), ("unlock",), s=5, i=7, c=0.92))
    assert "lock" in text and "unlock" in text
    assert "s-sup=5" in text and "i-sup=7" in text and "0.920" in text


def test_same_statistics():
    assert _rule(("a",), ("b",)).same_statistics(_rule(("a",), ("c",)))
    assert not _rule(("a",), ("b",), i=4).same_statistics(_rule(("a",), ("b",)))
    assert not _rule(("a",), ("b",), c=0.5).same_statistics(_rule(("a",), ("b",)))


def test_redundancy_by_proper_subsequence():
    shorter = _rule(("a",), ("c",))
    longer = _rule(("a",), ("b", "c"))
    assert shorter.is_redundant_with_respect_to(longer)
    assert not longer.is_redundant_with_respect_to(shorter)


def test_redundancy_requires_equal_statistics():
    shorter = _rule(("a",), ("c",), i=9)
    longer = _rule(("a",), ("b", "c"))
    assert not shorter.is_redundant_with_respect_to(longer)


def test_redundancy_tie_break_prefers_shorter_premise():
    long_premise = _rule(("a", "b"), ("c",))
    short_premise = _rule(("a",), ("b", "c"))
    assert long_premise.is_redundant_with_respect_to(short_premise)
    assert not short_premise.is_redundant_with_respect_to(long_premise)


def test_rule_is_never_redundant_with_itself():
    rule = _rule(("a",), ("b",))
    assert not rule.is_redundant_with_respect_to(rule)


def test_to_ltl_matches_table2():
    assert _rule(("a",), ("b",)).to_ltl() == "G((a -> XF(b)))"
    assert _rule(("a", "b"), ("c", "d")).to_ltl() == "G((a -> XG((b -> XF((c /\\ XF(d)))))))"


def test_as_dict_round_trips_fields():
    payload = _rule(("a",), ("b", "c"), s=4, i=6, c=0.75).as_dict()
    assert payload == {
        "premise": ["a"],
        "consequent": ["b", "c"],
        "s_support": 4,
        "i_support": 6,
        "confidence": 0.75,
    }
