"""Tests for premise generation (Step 1, Theorem 2)."""

from repro.core.pattern import is_subsequence
from repro.rules.premise_miner import PremiseMiner
from repro.rules.temporal_points import earliest_embedding_end


def _encode(sequences):
    return [tuple(sequence) for sequence in sequences]


def test_single_events_and_their_sequence_supports():
    db = _encode([[0, 1], [1, 2], [1]])
    premises = {p.pattern: p.s_support for p in PremiseMiner(min_s_support=2).mine(db)}
    assert premises[(1,)] == 3
    assert (0,) not in premises
    assert (2,) not in premises


def test_multi_event_premises_respect_sequence_support():
    db = _encode([[0, 1, 2], [0, 2, 1], [0, 1]])
    premises = {p.pattern: p.s_support for p in PremiseMiner(min_s_support=2).mine(db)}
    assert premises[(0, 1)] == 3
    assert premises[(0, 2)] == 2
    assert (0, 1, 2) not in premises  # only sequence 0 contains it


def test_premise_support_counts_sequences_not_occurrences():
    db = _encode([[0, 1, 0, 1, 0, 1]])
    premises = {p.pattern: p.s_support for p in PremiseMiner(min_s_support=1).mine(db)}
    assert premises[(0, 1)] == 1


def test_projections_record_earliest_embeddings():
    db = _encode([[3, 0, 1, 1], [0, 2, 1]])
    for premise in PremiseMiner(min_s_support=1).mine(db):
        for sequence_index, position in premise.projections:
            assert earliest_embedding_end(db[sequence_index], premise.pattern) == position


def test_all_mined_premises_are_subsequences_of_some_sequence():
    db = _encode([[0, 1, 2, 0], [2, 1, 0]])
    for premise in PremiseMiner(min_s_support=1).mine(db):
        assert any(is_subsequence(premise.pattern, sequence) for sequence in db)


def test_max_length_caps_premises():
    db = _encode([[0, 1, 2, 3]] * 2)
    premises = list(PremiseMiner(min_s_support=2, max_length=2).mine(db))
    assert premises
    assert all(len(p.pattern) <= 2 for p in premises)


def test_allowed_events_restricts_premise_alphabet():
    db = _encode([[0, 1, 2], [0, 1, 2]])
    premises = {p.pattern for p in PremiseMiner(min_s_support=2, allowed_events=frozenset({0, 1})).mine(db)}
    assert (0, 1) in premises
    assert all(2 not in pattern for pattern in premises)


def test_apriori_pruning_counts(abc_database):
    encoded = abc_database.encoded
    miner = PremiseMiner(min_s_support=3)
    list(miner.mine(encoded))
    assert miner.stats.pruned_support > 0
