"""Tests for the Definition 5.2 redundancy filter."""

from repro.rules.redundancy import filter_redundant, find_redundant
from repro.rules.rule import RecurrentRule


def _rule(premise, consequent, s=2, i=3, c=0.8):
    return RecurrentRule(
        premise=tuple(premise), consequent=tuple(consequent), s_support=s, i_support=i, confidence=c
    )


def test_shorter_rule_with_same_statistics_is_redundant():
    shorter = _rule(("a",), ("c",))
    longer = _rule(("a",), ("b", "c"))
    kept, dropped = filter_redundant([shorter, longer])
    assert kept == [longer]
    assert dropped == [shorter]


def test_rules_with_different_statistics_are_both_kept():
    first = _rule(("a",), ("c",), i=9)
    second = _rule(("a",), ("b", "c"), i=3)
    kept, dropped = filter_redundant([first, second])
    assert set(rule.signature() for rule in kept) == {first.signature(), second.signature()}
    assert dropped == []


def test_tie_break_keeps_shorter_premise():
    long_premise = _rule(("a", "b"), ("c",))
    short_premise = _rule(("a",), ("b", "c"))
    kept, dropped = filter_redundant([long_premise, short_premise])
    assert kept == [short_premise]
    assert dropped == [long_premise]


def test_chain_of_redundancy_keeps_only_the_maximal_rule():
    small = _rule(("a",), ("d",))
    middle = _rule(("a",), ("c", "d"))
    large = _rule(("a",), ("b", "c", "d"))
    kept, dropped = filter_redundant([small, middle, large])
    assert kept == [large]
    assert {rule.signature() for rule in dropped} == {small.signature(), middle.signature()}


def test_unrelated_rules_are_kept():
    first = _rule(("x",), ("y",))
    second = _rule(("p",), ("q",))
    kept, dropped = filter_redundant([first, second])
    assert len(kept) == 2 and not dropped


def test_find_redundant_matches_filter():
    rules = [_rule(("a",), ("c",)), _rule(("a",), ("b", "c")), _rule(("z",), ("w",), i=1)]
    redundant = find_redundant(rules)
    _, dropped = filter_redundant(rules)
    assert {rule.signature() for rule in redundant} == {rule.signature() for rule in dropped}


def test_empty_input():
    kept, dropped = filter_redundant([])
    assert kept == [] and dropped == []
