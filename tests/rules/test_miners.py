"""Tests for the full and non-redundant recurrent-rule miners."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.positions import PositionIndex
from repro.core.sequence import SequenceDatabase
from repro.rules.config import RuleMiningConfig
from repro.rules.full_miner import FullRecurrentRuleMiner, mine_all_rules
from repro.rules.nonredundant_miner import (
    NonRedundantRecurrentRuleMiner,
    mine_non_redundant_rules,
)
from repro.rules.temporal_points import rule_statistics


@pytest.fixture
def resource_db() -> SequenceDatabase:
    """Lock/unlock traces with one violating tail (the last lock is never released)."""
    return SequenceDatabase.from_sequences(
        [
            ["lock", "use", "unlock"],
            ["lock", "unlock", "lock", "unlock"],
            ["lock", "use", "use", "unlock", "lock"],
        ]
    )


def test_lock_unlock_rule_statistics(resource_db):
    rules = mine_all_rules(resource_db, min_s_support=3, min_confidence=0.6)
    rule = rules.find(["lock"], ["unlock"])
    assert rule is not None
    assert rule.s_support == 3
    assert rule.i_support == 4
    assert rule.confidence == pytest.approx(4 / 5)


def test_all_emitted_rules_meet_thresholds(resource_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.7, min_i_support=2)
    result = FullRecurrentRuleMiner(config).mine(resource_db)
    assert len(result) > 0
    for rule in result:
        assert rule.s_support >= result.min_s_support
        assert rule.i_support >= config.min_i_support
        assert rule.confidence >= config.min_confidence - 1e-12


def test_emitted_statistics_match_oracle(resource_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    result = FullRecurrentRuleMiner(config).mine(resource_db)
    encoded = resource_db.encoded
    index = PositionIndex(encoded)
    for rule in result:
        s_support, i_support, confidence = rule_statistics(
            encoded,
            index,
            resource_db.vocabulary.encode(rule.premise),
            resource_db.vocabulary.encode(rule.consequent),
        )
        assert (s_support, i_support) == (rule.s_support, rule.i_support)
        assert confidence == pytest.approx(rule.confidence)


def test_non_redundant_is_subset_of_full(resource_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    full = FullRecurrentRuleMiner(config).mine(resource_db)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(resource_db)
    full_signatures = {rule.signature() for rule in full}
    assert len(non_redundant) <= len(full)
    assert all(rule.signature() in full_signatures for rule in non_redundant)


def test_every_dropped_rule_is_covered_by_a_kept_rule(resource_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    full = FullRecurrentRuleMiner(config).mine(resource_db)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(resource_db)
    kept_signatures = {rule.signature() for rule in non_redundant}
    for rule in full:
        if rule.signature() in kept_signatures:
            continue
        assert any(rule.is_redundant_with_respect_to(kept) for kept in non_redundant)


def test_no_kept_rule_is_redundant_within_the_result(resource_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(resource_db)
    for rule in non_redundant:
        assert not any(
            rule.is_redundant_with_respect_to(other)
            for other in non_redundant
            if other is not rule
        )


def test_confidence_threshold_filters_rules(resource_db):
    permissive = mine_all_rules(resource_db, min_s_support=2, min_confidence=0.4)
    strict = mine_all_rules(resource_db, min_s_support=2, min_confidence=0.95)
    assert len(strict) <= len(permissive)
    assert all(rule.confidence >= 0.95 - 1e-12 for rule in strict)


def test_i_support_threshold_is_a_pure_filter(resource_db):
    low = mine_all_rules(resource_db, min_s_support=2, min_confidence=0.5, min_i_support=1)
    high = mine_all_rules(resource_db, min_s_support=2, min_confidence=0.5, min_i_support=3)
    assert {r.signature() for r in high} <= {r.signature() for r in low}
    assert all(rule.i_support >= 3 for rule in high)


def test_premise_and_consequent_length_caps(resource_db):
    result = mine_all_rules(
        resource_db,
        min_s_support=2,
        min_confidence=0.5,
        max_premise_length=1,
        max_consequent_length=2,
    )
    assert result
    assert all(len(rule.premise) <= 1 and len(rule.consequent) <= 2 for rule in result)


def test_allowed_premise_events_restriction(resource_db):
    config = RuleMiningConfig(
        min_s_support=2,
        min_confidence=0.5,
        allowed_premise_events=frozenset({"lock"}),
    )
    result = NonRedundantRecurrentRuleMiner(config).mine(resource_db)
    assert result
    assert all(set(rule.premise) <= {"lock"} for rule in result)


def test_multi_event_rule_is_mined():
    db = SequenceDatabase.from_sequences(
        [
            ["connect", "auth", "transfer", "receipt", "close"],
            ["connect", "auth", "ping", "transfer", "log", "receipt"],
            ["connect", "browse", "close"],
        ]
    )
    result = mine_non_redundant_rules(db, min_s_support=2, min_confidence=0.9)
    rule = result.find(["connect", "auth"], ["transfer", "receipt"])
    assert rule is not None
    assert rule.confidence == pytest.approx(1.0)
    assert rule.s_support == 2


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(min_s_support=0)
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(min_confidence=0.0)
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(min_confidence=1.5)
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(min_i_support=0)
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(max_premise_length=0)
    with pytest.raises(ConfigurationError):
        RuleMiningConfig(allowed_premise_events=frozenset())


def test_empty_database_yields_no_rules():
    result = mine_all_rules(SequenceDatabase(), min_s_support=1, min_confidence=0.5)
    assert len(result) == 0
