"""Property-based tests for recurrent-rule mining (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.positions import PositionIndex
from repro.core.sequence import SequenceDatabase
from repro.rules.config import RuleMiningConfig
from repro.rules.full_miner import FullRecurrentRuleMiner
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.rules.temporal_points import (
    is_followed_by,
    rule_statistics,
    temporal_points_in_sequence,
)

sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10),
    min_size=1,
    max_size=4,
)
pattern_strategy = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3)


@given(sequences=sequences_strategy, premise=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_temporal_points_satisfy_their_definition(sequences, premise):
    """Definition 5.1: the prefix up to a point contains the premise and ends with its last event."""
    from repro.core.pattern import is_subsequence

    for sequence in sequences:
        points = temporal_points_in_sequence(sequence, premise)
        for point in points:
            assert sequence[point] == premise[-1]
            assert is_subsequence(premise, sequence[: point + 1])
        # Completeness: every qualifying position is reported.
        for position in range(len(sequence)):
            if sequence[position] == premise[-1] and is_subsequence(
                premise, sequence[: position + 1]
            ):
                assert position in points


@given(
    sequences=sequences_strategy,
    premise=pattern_strategy,
    consequent=pattern_strategy,
    extension=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_confidence_is_antimonotone_in_the_consequent(sequences, premise, consequent, extension):
    """Theorem 3: extending the consequent can only lower confidence."""
    index = PositionIndex(sequences)
    _, _, confidence = rule_statistics(sequences, index, premise, consequent)
    _, _, extended_confidence = rule_statistics(
        sequences, index, premise, list(consequent) + [extension]
    )
    assert extended_confidence <= confidence + 1e-12


@given(sequences=sequences_strategy, premise=pattern_strategy, extension=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_sequence_support_is_antimonotone_in_the_premise(sequences, premise, extension):
    """Theorem 2: extending the premise can only lower its sequence support."""
    index = PositionIndex(sequences)
    s_support, _, _ = rule_statistics(sequences, index, premise, [0])
    extended_s_support, _, _ = rule_statistics(
        sequences, index, list(premise) + [extension], [0]
    )
    assert extended_s_support <= s_support


@given(sequences=sequences_strategy)
@settings(max_examples=20, deadline=None)
def test_miner_statistics_match_the_oracle(sequences):
    db = SequenceDatabase.from_sequences(sequences)
    config = RuleMiningConfig(
        min_s_support=1, min_confidence=0.5, max_premise_length=2, max_consequent_length=2
    )
    result = FullRecurrentRuleMiner(config).mine(db)
    encoded = db.encoded
    index = PositionIndex(encoded)
    for rule in result:
        s_support, i_support, confidence = rule_statistics(
            encoded,
            index,
            db.vocabulary.encode(rule.premise),
            db.vocabulary.encode(rule.consequent),
        )
        assert (s_support, i_support) == (rule.s_support, rule.i_support)
        assert abs(confidence - rule.confidence) < 1e-9


@given(sequences=sequences_strategy)
@settings(max_examples=15, deadline=None)
def test_nonredundant_result_summarises_full_result(sequences):
    db = SequenceDatabase.from_sequences(sequences)
    config = RuleMiningConfig(
        min_s_support=1, min_confidence=0.5, max_premise_length=2, max_consequent_length=3
    )
    full = FullRecurrentRuleMiner(config).mine(db)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(db)
    kept_signatures = {rule.signature() for rule in non_redundant}
    full_signatures = {rule.signature() for rule in full}
    assert kept_signatures <= full_signatures
    for rule in full:
        if rule.signature() in kept_signatures:
            continue
        assert any(rule.is_redundant_with_respect_to(kept) for kept in non_redundant)


@given(sequences=sequences_strategy, premise=pattern_strategy, consequent=pattern_strategy)
@settings(max_examples=40, deadline=None)
def test_rule_satisfaction_matches_ltl_translation(sequences, premise, consequent):
    """A trace satisfies a rule at every temporal point iff its LTL form holds."""
    from repro.ltl.semantics import holds
    from repro.ltl.translate import rule_to_ltl

    formula = rule_to_ltl(premise, consequent)
    for sequence in sequences:
        points = temporal_points_in_sequence(sequence, premise)
        rule_holds = all(is_followed_by(sequence, point, consequent) for point in points)
        assert holds(formula, sequence) == rule_holds
