"""Tests for temporal points and rule statistics (Definition 5.1)."""

import pytest

from repro.core.errors import PatternError
from repro.core.positions import PositionIndex
from repro.rules.temporal_points import (
    TemporalPoint,
    count_occurrences_in_sequence,
    earliest_embedding_end,
    instance_support,
    is_followed_by,
    rule_statistics,
    sequence_support,
    temporal_points,
    temporal_points_in_sequence,
)


def test_earliest_embedding_end():
    assert earliest_embedding_end(["a", "b", "c"], ["a", "c"]) == 2
    assert earliest_embedding_end(["a", "b", "c"], ["b"]) == 1
    assert earliest_embedding_end(["a", "b"], []) == -1
    assert earliest_embedding_end(["a", "b"], ["c"]) is None
    assert earliest_embedding_end(["a", "b", "a"], ["a", "a"]) == 2


def test_temporal_points_single_event():
    assert temporal_points_in_sequence(["a", "b", "a"], ["a"]) == [0, 2]


def test_temporal_points_require_prefix_and_last_event():
    # Points of <a, b>: positions of 'b' with an 'a' strictly before.
    assert temporal_points_in_sequence(["b", "a", "b", "b"], ["a", "b"]) == [2, 3]
    assert temporal_points_in_sequence(["b", "b"], ["a", "b"]) == []


def test_temporal_points_empty_pattern_rejected():
    with pytest.raises(PatternError):
        temporal_points_in_sequence(["a"], [])


def test_temporal_points_across_database():
    db = [["a", "b"], ["b"], ["a", "x", "b", "b"]]
    points = temporal_points(db, ["a", "b"])
    assert points == [TemporalPoint(0, 1), TemporalPoint(2, 2), TemporalPoint(2, 3)]


def test_count_occurrences_matches_temporal_point_count():
    sequence = ["a", "b", "a", "b", "b"]
    positions = PositionIndex([sequence])[0]
    assert count_occurrences_in_sequence(positions, sequence, ["a", "b"]) == len(
        temporal_points_in_sequence(sequence, ["a", "b"])
    )
    assert count_occurrences_in_sequence(positions, sequence, ["z", "b"]) == 0


def test_instance_and_sequence_support():
    db = [["a", "b", "b"], ["a"], ["b", "a", "b"]]
    index = PositionIndex(db)
    assert instance_support(db, index, ["a", "b"]) == 3
    assert sequence_support(db, ["a", "b"]) == 2
    assert sequence_support(db, ["a"]) == 3


def test_is_followed_by():
    assert is_followed_by(["a", "b", "c"], 0, ["b", "c"])
    assert not is_followed_by(["a", "b", "c"], 1, ["b"])
    assert is_followed_by(["a", "b", "c"], 1, ["c"])
    assert not is_followed_by(["a"], 0, ["a"])


def test_rule_statistics_lock_unlock():
    db = [["lock", "use", "unlock"], ["lock", "unlock", "lock"]]
    index = PositionIndex(db)
    s_support, i_support, confidence = rule_statistics(db, index, ["lock"], ["unlock"])
    assert s_support == 2
    assert i_support == 2
    # Temporal points of <lock>: 3; the final lock is never followed by unlock.
    assert confidence == pytest.approx(2 / 3)


def test_rule_statistics_with_unmatched_premise():
    db = [["a", "b"]]
    index = PositionIndex(db)
    s_support, i_support, confidence = rule_statistics(db, index, ["z"], ["b"])
    assert s_support == 0
    assert i_support == 0
    assert confidence == 0.0


def test_rule_statistics_multi_event_consequent():
    db = [["init", "work", "cleanup", "shutdown"], ["init", "shutdown"]]
    index = PositionIndex(db)
    s_support, i_support, confidence = rule_statistics(
        db, index, ["init"], ["cleanup", "shutdown"]
    )
    assert s_support == 2
    assert i_support == 1
    assert confidence == pytest.approx(0.5)
