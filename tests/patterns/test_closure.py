"""Unit tests for the closedness checks."""

from repro.core.instances import find_instances
from repro.core.positions import PositionIndex
from repro.core.projection import forward_extensions
from repro.patterns.closure import (
    backward_closure_violation,
    forward_closure_violation,
    infix_closure_violation,
    is_closed,
)


def _setup(sequences, pattern):
    encoded = [tuple(sequence) for sequence in sequences]
    index = PositionIndex(encoded)
    instances = find_instances(encoded, pattern)
    extensions = forward_extensions(encoded, index, pattern, instances)
    return encoded, index, instances, extensions


def test_forward_violation_detected():
    encoded, index, instances, extensions = _setup([[0, 1], [0, 2, 1]], (0,))
    assert forward_closure_violation(extensions, len(instances)) == 1
    assert not is_closed(encoded, index, (0,), instances, extensions)


def test_forward_violation_absent_when_supports_differ():
    encoded, index, instances, extensions = _setup([[0, 1], [0, 2]], (0,))
    assert forward_closure_violation(extensions, len(instances)) is None


def test_backward_violation_detected():
    encoded, index, instances, extensions = _setup([[5, 1], [9, 5, 1]], (1,))
    assert backward_closure_violation(encoded, index, (1,), instances) == 5
    assert not is_closed(encoded, index, (1,), instances, extensions)


def test_backward_violation_absent_when_predecessors_differ():
    encoded, index, instances, extensions = _setup([[5, 1], [6, 1]], (1,))
    assert backward_closure_violation(encoded, index, (1,), instances) is None


def test_infix_violation_detected():
    encoded, index, instances, extensions = _setup([[0, 7, 1], [0, 7, 1, 3]], (0, 1))
    violation = infix_closure_violation(encoded, index, (0, 1), instances)
    assert violation == (7, 1)
    assert not is_closed(encoded, index, (0, 1), instances, extensions)


def test_infix_violation_requires_all_instances():
    encoded, index, instances, extensions = _setup([[0, 7, 1], [0, 8, 1]], (0, 1))
    assert infix_closure_violation(encoded, index, (0, 1), instances) is None
    assert is_closed(encoded, index, (0, 1), instances, extensions)


def test_infix_violation_rejects_repeated_gap_event():
    # 7 occurs twice inside the first instance's gap, so inserting a single 7
    # does not yield a corresponding same-support super-pattern.
    encoded, index, instances, extensions = _setup([[0, 7, 7, 1], [0, 7, 1]], (0, 1))
    assert infix_closure_violation(encoded, index, (0, 1), instances) is None


def test_infix_violation_requires_equal_supports():
    # The third sequence hosts an instance of <0, 1> that the insertion
    # <0, 7, 1> cannot match, so the supports differ and <0, 1> stays closed.
    encoded, index, instances, extensions = _setup(
        [[0, 7, 1], [0, 7, 1, 3], [0, 7, 0, 1]], (0, 1)
    )
    base_instances = find_instances(encoded, (0, 1))
    extension_instances = find_instances(encoded, (0, 7, 1))
    assert len(extension_instances) != len(base_instances)
    assert infix_closure_violation(encoded, index, (0, 1), instances) is None


def test_is_closed_with_infix_disabled():
    encoded, index, instances, extensions = _setup([[0, 7, 1], [0, 7, 1, 3]], (0, 1))
    assert is_closed(encoded, index, (0, 1), instances, extensions, check_infix=False)
