"""Tests for generator pattern mining (the paper's future-work extension)."""

from repro.core.sequence import SequenceDatabase
from repro.patterns.closed_miner import mine_closed_patterns
from repro.patterns.full_miner import mine_frequent_patterns
from repro.patterns.generators import (
    GeneratorPatternMiner,
    mine_generators,
    propose_generator_rules,
)
from repro.patterns.config import IterativeMiningConfig


def test_generators_are_minimal_members():
    # 'a' always leads to 'b': <a> and <b> are generators (deleting nothing
    # further is possible), while <a, b> shares its support with <a> and <b>
    # and therefore is not a generator.
    db = SequenceDatabase.from_sequences([["a", "x", "b"], ["a", "b", "y"]])
    generators = mine_generators(db, min_support=2)
    events = {pattern.events for pattern in generators}
    assert ("a",) in events
    assert ("b",) in events
    assert ("a", "b") not in events


def test_pattern_sharing_support_with_a_deletion_is_not_a_generator():
    db = SequenceDatabase.from_sequences([["a", "b"], ["a", "c"], ["a", "b"]])
    generators = mine_generators(db, min_support=2)
    events = {pattern.events for pattern in generators}
    assert ("a",) in events
    assert ("b",) in events
    # <a, b> has the same support (2) as its deletion <b>, so it is not minimal.
    assert ("a", "b") not in events


def test_generator_set_is_subset_of_frequent_set(abc_database):
    full = mine_frequent_patterns(abc_database, min_support=2)
    generators = GeneratorPatternMiner(IterativeMiningConfig(min_support=2)).filter_generators(
        abc_database, full
    )
    full_events = {pattern.events for pattern in full}
    assert {pattern.events for pattern in generators} <= full_events


def test_single_events_are_always_generators(abc_database):
    generators = mine_generators(abc_database, min_support=2)
    singletons = {pattern.events for pattern in generators if len(pattern) == 1}
    full_singletons = {
        pattern.events
        for pattern in mine_frequent_patterns(abc_database, min_support=2)
        if len(pattern) == 1
    }
    assert singletons == full_singletons


def test_propose_generator_rules_pairs_by_support():
    db = SequenceDatabase.from_sequences([["a", "x", "b"], ["a", "b", "y"]])
    generators = mine_generators(db, min_support=2)
    closed = mine_closed_patterns(db, min_support=2)
    pairs = propose_generator_rules(generators, closed)
    assert pairs, "expected at least one generator/closed pairing"
    for generator, closed_pattern in pairs:
        assert generator.support == closed_pattern.support
        assert len(generator) < len(closed_pattern)
