"""Tests for the full (all-frequent) iterative pattern miner."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.instances import find_instances
from repro.core.sequence import SequenceDatabase
from repro.patterns.config import IterativeMiningConfig
from repro.patterns.full_miner import FullIterativePatternMiner, mine_frequent_patterns


def test_lock_unlock_example(lock_database):
    result = mine_frequent_patterns(lock_database, min_support=4)
    events = sorted(pattern.events for pattern in result)
    assert ("lock", "unlock") in events
    assert ("lock",) in events
    assert ("unlock",) in events
    assert result.support_of(("lock", "unlock")) == 5


def test_supports_match_the_oracle(abc_database):
    result = mine_frequent_patterns(abc_database, min_support=2)
    encoded = abc_database.encoded
    for pattern in result:
        oracle = len(find_instances(encoded, abc_database.vocabulary.encode(pattern.events)))
        assert oracle == pattern.support
        assert pattern.support >= result.min_support


def test_counts_repetitions_within_a_sequence():
    db = SequenceDatabase.from_sequences([["a", "b", "a", "b", "a", "b"]])
    result = mine_frequent_patterns(db, min_support=3)
    assert result.support_of(("a", "b")) == 3


def test_relative_min_support_uses_number_of_sequences():
    db = SequenceDatabase.from_sequences([["a", "b"]] * 10 + [["c"]] * 10)
    result = mine_frequent_patterns(db, min_support=0.5)
    assert result.min_support == 10
    assert result.contains(("a", "b"))
    assert result.contains(("c",))


def test_max_pattern_length_limits_search():
    db = SequenceDatabase.from_sequences([["a", "b", "c"]] * 3)
    result = mine_frequent_patterns(db, min_support=3, max_pattern_length=2)
    assert all(len(pattern) <= 2 for pattern in result)
    assert result.contains(("a", "b"))
    assert not result.contains(("a", "b", "c"))


def test_instances_collected_by_default_and_optional():
    db = SequenceDatabase.from_sequences([["a", "b"]] * 2)
    with_instances = FullIterativePatternMiner(IterativeMiningConfig(min_support=2)).mine(db)
    assert all(pattern.instances for pattern in with_instances)
    without = FullIterativePatternMiner(
        IterativeMiningConfig(min_support=2, collect_instances=False)
    ).mine(db)
    assert all(pattern.instances == () for pattern in without)


def test_every_prefix_of_a_frequent_pattern_is_frequent(abc_database):
    # Theorem 1 corollary: the result set is prefix-closed.
    result = mine_frequent_patterns(abc_database, min_support=2)
    mined = {pattern.events for pattern in result}
    for events in mined:
        for cut in range(1, len(events)):
            assert events[:cut] in mined


def test_infrequent_events_are_pruned(lock_database):
    result = mine_frequent_patterns(lock_database, min_support=2)
    assert not result.contains(("read",))
    assert result.stats.pruned_support > 0


def test_stats_are_populated(lock_database):
    result = mine_frequent_patterns(lock_database, min_support=2)
    assert result.stats.visited >= len(result)
    assert result.stats.emitted == len(result)
    assert result.stats.elapsed_seconds >= 0.0


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        IterativeMiningConfig(min_support=0)
    with pytest.raises(ConfigurationError):
        IterativeMiningConfig(min_support=2, max_pattern_length=0)


def test_empty_database_yields_no_patterns():
    result = mine_frequent_patterns(SequenceDatabase(), min_support=1)
    assert len(result) == 0
