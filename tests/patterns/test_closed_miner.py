"""Tests for the closed iterative pattern miner (Definition 4.2)."""

from repro.core.sequence import SequenceDatabase
from repro.patterns.closed_miner import ClosedIterativePatternMiner, mine_closed_patterns
from repro.patterns.config import IterativeMiningConfig
from repro.patterns.full_miner import mine_frequent_patterns


def test_lock_unlock_collapses_to_the_closed_pattern(lock_database):
    closed = mine_closed_patterns(lock_database, min_support=5)
    assert sorted(pattern.events for pattern in closed) == [("lock", "unlock")]


def test_closed_is_subset_of_full_with_same_supports(abc_database):
    full = mine_frequent_patterns(abc_database, min_support=2)
    closed = mine_closed_patterns(abc_database, min_support=2)
    full_supports = {pattern.events: pattern.support for pattern in full}
    assert len(closed) <= len(full)
    for pattern in closed:
        assert full_supports[pattern.events] == pattern.support


def test_every_frequent_pattern_has_a_closed_cover(abc_database):
    full = mine_frequent_patterns(abc_database, min_support=2)
    closed = mine_closed_patterns(abc_database, min_support=2)
    from repro.core.pattern import is_subsequence

    for pattern in full:
        assert any(
            is_subsequence(pattern.events, closed_pattern.events)
            and closed_pattern.support >= pattern.support
            for closed_pattern in closed
        )


def test_forward_absorption_removes_prefixes():
    # 'a' is always followed by 'b': <a> is not closed, <a, b> is.
    db = SequenceDatabase.from_sequences([["a", "b"], ["x", "a", "y", "b"]])
    closed = mine_closed_patterns(db, min_support=2)
    events = {pattern.events for pattern in closed}
    assert ("a", "b") in events
    assert ("a",) not in events


def test_backward_absorption_removes_suffixes():
    db = SequenceDatabase.from_sequences([["a", "b"], ["x", "a", "y", "b"]])
    closed = mine_closed_patterns(db, min_support=2)
    assert ("b",) not in {pattern.events for pattern in closed}


def test_infix_absorption_removes_gappy_pattern():
    # 'm' always occurs between 'a' and 'b', exactly once: <a, b> is not
    # closed because <a, m, b> has the same support and corresponds.
    db = SequenceDatabase.from_sequences([["a", "m", "b"], ["a", "m", "b", "z"]])
    closed = mine_closed_patterns(db, min_support=2)
    events = {pattern.events for pattern in closed}
    assert ("a", "m", "b") in events
    assert ("a", "b") not in events


def test_infix_check_can_be_disabled():
    db = SequenceDatabase.from_sequences([["a", "m", "b"], ["a", "m", "b", "z"]])
    config = IterativeMiningConfig(min_support=2, check_infix_extensions=False)
    closed = ClosedIterativePatternMiner(config).mine(db)
    events = {pattern.events for pattern in closed}
    # Without the infix check <a, b> survives (it has no same-support
    # forward or backward single-event extension).
    assert ("a", "b") in events


def test_pattern_with_different_support_than_extension_is_kept():
    db = SequenceDatabase.from_sequences([["a", "b"], ["a", "c"], ["a", "b"]])
    closed = mine_closed_patterns(db, min_support=2)
    events = {pattern.events for pattern in closed}
    assert ("a",) in events  # support 3, no extension reaches 3
    assert ("a", "b") in events  # support 2


def test_absorption_pruning_preserves_the_lock_unlock_result(lock_database):
    exact = mine_closed_patterns(lock_database, min_support=4)
    pruned = ClosedIterativePatternMiner(
        IterativeMiningConfig(min_support=4, adjacent_absorption_pruning=True)
    ).mine(lock_database)
    assert {p.events for p in pruned} <= {p.events for p in exact}
    assert ("lock", "unlock") in {p.events for p in pruned}
    assert pruned.stats.visited <= exact.stats.visited


def test_closed_result_flags():
    db = SequenceDatabase.from_sequences([["a", "b"]] * 2)
    closed = mine_closed_patterns(db, min_support=2)
    assert closed.closed_only is True
    assert closed.min_support == 2
    full = mine_frequent_patterns(db, min_support=2)
    assert full.closed_only is False


def test_closure_pruning_counter_increases(lock_database):
    closed = mine_closed_patterns(lock_database, min_support=4)
    assert closed.stats.pruned_closure > 0
