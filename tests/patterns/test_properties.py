"""Property-based tests for iterative pattern mining (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.instances import find_instances, find_instances_in_sequence
from repro.core.pattern import is_subsequence
from repro.core.positions import PositionIndex
from repro.core.projection import forward_extensions
from repro.core.sequence import SequenceDatabase
from repro.patterns.closed_miner import mine_closed_patterns
from repro.patterns.full_miner import mine_frequent_patterns

# Small alphabets make repetitions (the interesting case) likely.
sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12),
    min_size=1,
    max_size=4,
)
pattern_strategy = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3)


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_instances_are_disjoint_in_alphabet_events(sequences, pattern):
    """Inside an instance the alphabet events are exactly the pattern, in order."""
    alphabet = set(pattern)
    for sequence in sequences:
        for start, end in find_instances_in_sequence(sequence, pattern):
            inside = [event for event in sequence[start : end + 1] if event in alphabet]
            assert inside == list(pattern)


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_instances_uniquely_determined_by_start_and_end(sequences, pattern):
    for sequence in sequences:
        spans = find_instances_in_sequence(sequence, pattern)
        starts = [start for start, _ in spans]
        ends = [end for _, end in spans]
        assert len(starts) == len(set(starts))
        assert len(ends) == len(set(ends))


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=50, deadline=None)
def test_prefix_support_is_antimonotone(sequences, pattern):
    """Theorem 1: truncating a pattern can only increase its support."""
    full_support = len(find_instances(sequences, pattern))
    for cut in range(1, len(pattern)):
        prefix_support = len(find_instances(sequences, pattern[:cut]))
        suffix_support = len(find_instances(sequences, pattern[cut:]))
        assert prefix_support >= full_support
        assert suffix_support >= full_support


@given(sequences=sequences_strategy, pattern=pattern_strategy, event=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_incremental_forward_extension_matches_oracle(sequences, pattern, event):
    encoded = [tuple(sequence) for sequence in sequences]
    index = PositionIndex(encoded)
    base = find_instances(encoded, pattern)
    extensions = forward_extensions(encoded, index, tuple(pattern), base)
    assert sorted(extensions.get(event, [])) == sorted(find_instances(encoded, tuple(pattern) + (event,)))


@given(sequences=sequences_strategy, min_support=st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_full_miner_supports_match_oracle(sequences, min_support):
    db = SequenceDatabase.from_sequences(sequences)
    result = mine_frequent_patterns(db, min_support=min_support)
    for pattern in result:
        encoded_pattern = db.vocabulary.encode(pattern.events)
        assert len(find_instances(db.encoded, encoded_pattern)) == pattern.support


@given(sequences=sequences_strategy, min_support=st.integers(min_value=2, max_value=4))
@settings(max_examples=20, deadline=None)
def test_closed_set_summarises_full_set(sequences, min_support):
    """Closed ⊆ full, supports agree, and every frequent pattern has a closed cover."""
    db = SequenceDatabase.from_sequences(sequences)
    full = mine_frequent_patterns(db, min_support=min_support)
    closed = mine_closed_patterns(db, min_support=min_support)
    full_supports = {pattern.events: pattern.support for pattern in full}
    for pattern in closed:
        assert full_supports.get(pattern.events) == pattern.support
    for pattern in full:
        assert any(
            is_subsequence(pattern.events, closed_pattern.events)
            and closed_pattern.support >= pattern.support
            for closed_pattern in closed
        )
