"""Unit tests for the fault-injection harness itself."""

import os
import threading

import pytest

from repro.testing import faults
from repro.testing.faults import FaultInjected, FaultRule, parse_spec


def test_unarmed_triggers_are_free_no_ops():
    assert faults.ACTIVE is None
    faults.trigger("engine.unit", key="grow:lock")  # must not raise


def test_raise_action_fires_and_respects_its_budget():
    faults.install("unit.test", "raise", count=2)
    fired = 0
    for _ in range(5):
        try:
            faults.trigger("unit.test")
        except FaultInjected:
            fired += 1
    assert fired == 2


def test_budget_is_claimed_atomically_across_threads():
    faults.install("unit.race", "raise", count=3)
    fired = []

    def hammer():
        for _ in range(20):
            try:
                faults.trigger("unit.race")
            except FaultInjected:
                fired.append(1)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(fired) == 3


def test_keyed_rules_only_fire_on_their_key():
    faults.install("unit.keyed", "raise", key="shard-1")
    faults.trigger("unit.keyed", key="shard-0")  # no match
    faults.trigger("unit.keyed")  # keyed rule needs a key to match
    with pytest.raises(FaultInjected):
        faults.trigger("unit.keyed", key="shard-1")


def test_drop_action_is_flagged_as_a_connection_drop():
    faults.install("unit.drop", "drop", count=1)
    with pytest.raises(FaultInjected) as excinfo:
        faults.trigger("unit.drop")
    assert excinfo.value.drop_connection
    faults.reset()
    faults.install("unit.raise", "raise", count=1)
    with pytest.raises(FaultInjected) as excinfo:
        faults.trigger("unit.raise")
    assert not excinfo.value.drop_connection


def test_enospc_action_raises_a_disk_full_oserror():
    import errno

    faults.install("unit.disk", "enospc", count=1)
    with pytest.raises(OSError) as excinfo:
        faults.trigger("unit.disk")
    assert excinfo.value.errno == errno.ENOSPC


def test_reset_removes_the_owned_token_directory():
    plan = faults.install("unit.dir", "raise", count=1)
    token_dir = plan.token_dir
    assert token_dir is not None and os.path.isdir(token_dir)
    faults.reset()
    assert faults.ACTIVE is None
    assert not os.path.exists(token_dir)


def test_parse_spec_round_trips():
    rules = parse_spec("engine.unit:kill:key=grow-3:count=2;store.append:enospc")
    assert [rule.spec() for rule in rules] == [
        "engine.unit:kill:key=grow-3:count=2",
        "store.append:enospc",
    ]
    assert rules[0].count == 2 and rules[0].key == "grow-3"
    assert rules[1].count is None and rules[1].key is None


@pytest.mark.parametrize(
    "spec",
    ["engine.unit", "site:unknown-action", "site:kill:bogus=1"],
)
def test_bad_specs_are_rejected(spec):
    with pytest.raises(ValueError):
        for rule in parse_spec(spec):
            FaultRule(rule.site, rule.action)


def test_install_accumulates_rules_into_one_plan():
    faults.install("a.site", "raise", count=1)
    plan = faults.install("b.site", "sleep", value=0.0)
    assert [rule.site for rule in plan.rules] == ["a.site", "b.site"]
    assert faults.ACTIVE is plan
