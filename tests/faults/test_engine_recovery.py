"""Crash recovery in the parallel mining engine.

The contract under test: killing workers mid-mine must not change the
mined output.  Lost units are replayed on survivors, a unit that keeps
killing workers is quarantined with a diagnostic naming it, and stragglers
past the unit deadline are split-and-retried — all while the merged result
stays byte-identical to the serial reference.
"""

import multiprocessing
import os

import pytest

from repro.core.errors import ExecutionFault
from repro.engine import ProcessPoolBackend, WorkStealingBackend
from repro.patterns.closed_miner import mine_closed_patterns
from repro.rules.nonredundant_miner import mine_non_redundant_rules
from repro.testing import faults

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault plans reach engine workers by fork inheritance",
)


@fork_only
def test_stealing_backend_survives_two_worker_kills(lock_database):
    serial = mine_closed_patterns(lock_database, min_support=2)
    faults.install("engine.unit", "kill", count=2)
    backend = WorkStealingBackend(workers=4)
    recovered = mine_closed_patterns(lock_database, min_support=2, backend=backend)
    assert recovered.patterns == serial.patterns
    assert recovered.stats.extra["workers_lost"] == 2
    assert recovered.stats.extra["units_retried"] == 2


@fork_only
def test_stealing_rule_mining_survives_a_worker_kill(lock_database):
    serial = mine_non_redundant_rules(lock_database, min_s_support=2, min_confidence=0.5)
    faults.install("engine.unit", "kill", count=1)
    backend = WorkStealingBackend(workers=4)
    recovered = mine_non_redundant_rules(
        lock_database, min_s_support=2, min_confidence=0.5, backend=backend
    )
    assert recovered.rules == serial.rules
    assert recovered.stats.extra["workers_lost"] == 1


@fork_only
def test_process_pool_backend_recovers_from_a_killed_shard(lock_database):
    serial = mine_closed_patterns(lock_database, min_support=2)
    faults.install("engine.shard", "kill", count=1)
    backend = ProcessPoolBackend(workers=2)
    recovered = mine_closed_patterns(lock_database, min_support=2, backend=backend)
    assert recovered.patterns == serial.patterns
    assert recovered.stats.extra["pool_restarts"] == 1
    assert recovered.stats.extra["shards_retried"] >= 1


@fork_only
def test_poison_unit_is_quarantined_with_a_diagnostic(lock_database):
    # Unbounded keyed kill: every worker that picks up root 0 ("lock" —
    # work-unit roots are encoded event ids, in first-appearance order)
    # dies, so the third death must fail the mine naming the unit — while
    # other units still complete on surviving workers.
    faults.install("engine.unit", "kill", key="grow:0")
    backend = WorkStealingBackend(workers=4, unit_retries=2)
    with pytest.raises(ExecutionFault) as excinfo:
        mine_closed_patterns(lock_database, min_support=2, backend=backend)
    message = str(excinfo.value)
    assert "poison work unit quarantined" in message
    assert "grow unit" in message and "root 0" in message
    assert "3 worker(s)" in message


@fork_only
def test_deterministic_worker_exception_aborts_immediately(lock_database):
    # A plain exception (not a process death) would fail every replay the
    # same way; the coordinator must abort with the traceback instead of
    # burning the retry budget.
    faults.install("engine.unit", "raise", count=1)
    backend = WorkStealingBackend(workers=2)
    with pytest.raises(ExecutionFault, match="failed"):
        mine_closed_patterns(lock_database, min_support=2, backend=backend)


@fork_only
def test_unit_deadline_converts_stragglers_into_split_and_retry(lock_database):
    serial = mine_closed_patterns(lock_database, min_support=2)
    faults.install("engine.unit", "sleep", count=1, value=5.0)
    backend = WorkStealingBackend(workers=2, unit_deadline=0.3)
    recovered = mine_closed_patterns(lock_database, min_support=2, backend=backend)
    assert recovered.patterns == serial.patterns
    assert recovered.stats.extra["units_deadline_split"] == 1
    assert recovered.stats.extra["units_retried"] == 1


@fork_only
@pytest.mark.skipif(
    not os.environ.get("REPRO_FAULTS"),
    reason="chaos stress scenario; set REPRO_FAULTS=1 to run",
)
def test_chaos_kills_on_a_realistic_workload(small_transaction_traces):
    # Same mining parameters as the JBoss case-study tests: without the
    # absorption pruning this workload's closed-pattern search space is
    # intractable.
    kwargs = dict(min_support=4, adjacent_absorption_pruning=True)
    serial = mine_closed_patterns(small_transaction_traces, **kwargs)
    faults.install("engine.unit", "kill", count=3)
    # unit_retries=3: even if all three kills land on the same unit it
    # stays within budget (this test is about recovery, not quarantine).
    backend = WorkStealingBackend(workers=4, unit_retries=3)
    recovered = mine_closed_patterns(small_transaction_traces, backend=backend, **kwargs)
    assert recovered.patterns == serial.patterns
    assert recovered.stats.extra["workers_lost"] == 3
