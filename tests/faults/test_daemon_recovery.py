"""The watch daemon under store-side failures: backoff, telemetry, recovery."""

import json

from repro.ingest import TraceRecord, write_trace_records
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving import WatchDaemon
from repro.testing import faults


def _miner():
    return NonRedundantRecurrentRuleMiner(
        RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    )


def _write(path, traces):
    write_trace_records(
        path,
        [TraceRecord(tuple(trace), f"{path.stem}-{i}") for i, trace in enumerate(traces)],
    )


def test_enospc_cycle_backs_off_and_recovers(tmp_path):
    watch = tmp_path / "watch"
    watch.mkdir()
    _write(watch / "day1.jsonl", [["a", "b"], ["a", "b"]])
    daemon = WatchDaemon(watch, tmp_path / "store", _miner())
    faults.install("store.append", "enospc", count=1)

    cycles = daemon.run_forever(poll_interval=0.01, max_cycles=3)

    # Cycle 1 hit the injected full disk and was counted, not fatal; the
    # retry ingested the file and cleared the failure bookkeeping.
    assert cycles == 2
    assert daemon.cycle_failures == 1
    assert daemon.consecutive_failures == 0
    assert daemon.last_error is None
    assert len(daemon.store) == 2
    daemon.close()


def test_failure_is_reported_in_watch_state_then_cleared(tmp_path):
    watch = tmp_path / "watch"
    watch.mkdir()
    _write(watch / "day1.jsonl", [["a", "b"], ["a", "b"]])
    store_dir = tmp_path / "store"
    daemon = WatchDaemon(watch, store_dir, _miner())
    faults.install("store.append", "enospc", count=1)

    assert daemon.run_forever(poll_interval=0.01, max_cycles=1) == 0
    state = json.loads((store_dir / "watch_state.json").read_text())
    assert "No space left" in state["error"]["message"]
    assert state["error"]["consecutive_failures"] == 1
    assert state["error"]["total_failures"] == 1
    assert state["error"]["next_backoff_seconds"] > 0

    # The next successful cycle clears the error block for operators
    # (max_cycles counts cumulatively, including the failed cycle above).
    assert daemon.run_forever(poll_interval=0.01, max_cycles=2) == 1
    state = json.loads((store_dir / "watch_state.json").read_text())
    assert "error" not in state
    assert len(daemon.store) == 2
    daemon.close()


def test_backoff_grows_exponentially_and_is_capped(tmp_path):
    watch = tmp_path / "watch"
    watch.mkdir()
    _write(watch / "day1.jsonl", [["a", "b"]])
    daemon = WatchDaemon(watch, tmp_path / "store", _miner())
    faults.install("store.append", "enospc", count=3)

    daemon.run_forever(poll_interval=0.01, max_cycles=3, max_backoff=0.03)

    assert daemon.cycle_failures == 3
    assert daemon.consecutive_failures == 3
    # poll * 2**3 = 0.08 would exceed the cap.
    assert daemon.current_backoff == 0.03
    daemon.close()
