"""Shard supervision in the monitor pool: crash, SESSION_LOST, restart."""

import pytest

from repro.core.errors import MonitoringError, ServingTimeout, SessionLost
from repro.rules.rule import RecurrentRule
from repro.serving.pool import ACCEPTED, SESSION_LOST, MonitorPool
from repro.testing import faults

from .conftest import wait_until

RULES = [
    RecurrentRule(
        premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0
    ),
]


def _session_on(pool: MonitorPool, shard_index: int, prefix: str = "s") -> str:
    """A session id that consistently hashes onto ``shard_index``."""
    for attempt in range(10_000):
        session_id = f"{prefix}-{attempt}"
        if pool.route(session_id) == shard_index:
            return session_id
    raise AssertionError(f"no session id found for shard {shard_index}")


def test_crashed_shard_is_restarted_and_answers_session_lost_once():
    with MonitorPool(RULES, shards=2, supervisor_interval=0.02) as pool:
        victim = _session_on(pool, 0)
        bystander = _session_on(pool, 1, prefix="t")
        assert pool.feed(victim, "open") == ACCEPTED
        assert pool.feed(bystander, "open") == ACCEPTED
        assert pool.drain()

        faults.install("pool.shard", "raise", key="0", count=1)
        assert pool.feed(victim, "use") == ACCEPTED  # the item that kills the shard
        assert wait_until(lambda: pool.stats()["restarts"] == 1)

        stats = pool.stats()
        assert stats["sessions_lost"] == 1
        assert stats["per_shard"][0]["errors"] == 1
        assert stats["per_shard"][0]["restarts"] == 1

        # Exactly one SESSION_LOST per lost session, then the id is free.
        assert pool.feed(victim, "use") == SESSION_LOST
        assert pool.feed(victim, "open") == ACCEPTED

        # The other shard never noticed; the restarted shard serves again.
        assert pool.feed(bystander, "close") == ACCEPTED
        for session_id in (victim, bystander):
            ticket = pool.end_session(session_id)
            assert ticket is not None
            ticket.wait(timeout=5.0)
        assert pool.report().total_points > 0


def test_end_session_raises_session_lost_after_a_crash():
    with MonitorPool(RULES, shards=1, supervisor_interval=0.02) as pool:
        assert pool.feed("solo", "open") == ACCEPTED
        faults.install("pool.shard", "raise", key="0", count=1)
        assert pool.feed("solo", "use") == ACCEPTED
        assert wait_until(lambda: pool.stats()["restarts"] == 1)
        with pytest.raises(SessionLost):
            pool.end_session("solo")
        # The marker was consumed: the id is now simply unknown.
        with pytest.raises(MonitoringError, match="unknown"):
            pool.end_session("solo")


def test_queued_end_ticket_fails_with_session_lost():
    with MonitorPool(RULES, shards=1, supervisor_interval=0.02) as pool:
        assert pool.feed("solo", "open") == ACCEPTED
        assert pool.drain()
        pool.pause_shard(0)
        assert pool.feed("solo", "use") == ACCEPTED
        ticket = pool.end_session("solo")
        assert ticket is not None
        faults.install("pool.shard", "raise", key="0", count=1)
        pool.resume_shard(0)  # the events item kills the shard; END is still queued
        with pytest.raises(SessionLost):
            ticket.wait(timeout=5.0)
        assert wait_until(lambda: pool.stats()["restarts"] == 1)


def test_session_ticket_wait_times_out_and_can_be_retried():
    with MonitorPool(RULES, shards=1) as pool:
        pool.pause_shard(0)
        assert pool.feed("slow", "open") == ACCEPTED
        ticket = pool.end_session("slow")
        assert ticket is not None
        with pytest.raises(ServingTimeout, match="0.05"):
            ticket.wait(timeout=0.05)
        assert not ticket.done
        pool.resume_shard(0)
        report = ticket.wait(timeout=5.0)  # the close stayed pending; retry works
        assert report.total_points >= 0


def test_seq_deduplicates_resent_batches():
    with MonitorPool(RULES, shards=1) as pool:
        assert pool.feed_batch("dup", ("open", "close"), seq=0) == ACCEPTED
        assert pool.feed_batch("dup", ("open", "close"), seq=0) == ACCEPTED  # re-send
        assert pool.feed_batch("dup", ("open",), seq=1) == ACCEPTED
        ticket = pool.end_session("dup")
        assert ticket is not None
        ticket.wait(timeout=5.0)
        assert pool.stats()["events_processed"] == 3  # the re-send fed nothing


def test_drain_sessions_closes_everything_for_shutdown():
    with MonitorPool(RULES, shards=2) as pool:
        for index in range(5):
            assert pool.feed(f"open-{index}", "open") == ACCEPTED
        assert pool.drain_sessions(timeout=5.0) == 5
        assert pool.active_sessions == 0
        assert pool.stats()["sessions_closed"] == 5
