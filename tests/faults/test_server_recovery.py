"""Failure semantics of the TCP front end: torn frames, timeouts, reconnect."""

import socket
import threading

import pytest

from repro.core.errors import ServingTimeout
from repro.rules.rule import RecurrentRule
from repro.serving.pool import MonitorPool
from repro.serving.server import EventPushServer, PushClient, encode_frame
from repro.testing import faults

from .conftest import wait_until

RULES = [
    RecurrentRule(
        premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0
    ),
]


@pytest.fixture
def serving():
    pool = MonitorPool(RULES, shards=2, supervisor_interval=0.02)
    server = EventPushServer(pool)
    host, port = server.start()
    yield pool, host, port
    server.close()
    pool.close()


def _session_on(pool: MonitorPool, shard_index: int) -> str:
    for attempt in range(10_000):
        session_id = f"wire-{attempt}"
        if pool.route(session_id) == shard_index:
            return session_id
    raise AssertionError(f"no session id found for shard {shard_index}")


def _raw(host: str, port: int) -> socket.socket:
    return socket.create_connection((host, port), timeout=2.0)


# --------------------------------------------------------------------- #
# Torn frames and half-closed sockets
# --------------------------------------------------------------------- #
def test_connection_closed_mid_length_prefix(serving):
    pool, host, port = serving
    with _raw(host, port) as sock:
        sock.sendall(b"\x00\x00")  # two of the four length bytes, then FIN
    with PushClient(host, port, timeout=2.0) as client:
        assert client.ping() == {"op": "PONG"}
    assert pool.stats()["sessions_opened"] == 0


def test_connection_closed_mid_payload_admits_nothing(serving):
    pool, host, port = serving
    frame = encode_frame({"op": "EVENT", "session": "torn", "event": "open"})
    with _raw(host, port) as sock:
        sock.sendall(frame[:-3])  # correct header, truncated payload
    with PushClient(host, port, timeout=2.0) as client:
        assert client.ping() == {"op": "PONG"}
    # The torn EVENT never dispatched: no session was admitted.
    assert pool.stats()["sessions_opened"] == 0
    assert pool.active_sessions == 0


def test_connection_closed_between_pipelined_requests(serving):
    pool, host, port = serving
    ping = encode_frame({"op": "PING"})
    second = encode_frame({"op": "EVENT", "session": "torn", "event": "open"})
    with _raw(host, port) as sock:
        sock.sendall(ping + second[: len(second) // 2])
        stream = sock.makefile("rb")
        from repro.serving.server import read_frame

        assert read_frame(stream) == {"op": "PONG"}  # the complete frame was served
    with PushClient(host, port, timeout=2.0) as client:
        assert client.ping() == {"op": "PONG"}
    assert pool.stats()["sessions_opened"] == 0


def test_torn_connections_leak_no_threads_or_sessions(serving):
    pool, host, port = serving
    baseline = threading.active_count()
    for payload in (b"\x00", b"\x00\x00\x00\x08abc", b"not-a-frame-at-all"):
        for _ in range(4):
            with _raw(host, port) as sock:
                sock.sendall(payload)
    assert wait_until(lambda: threading.active_count() <= baseline)
    assert pool.active_sessions == 0
    with PushClient(host, port, timeout=2.0) as client:
        assert client.ping() == {"op": "PONG"}


# --------------------------------------------------------------------- #
# Timeouts
# --------------------------------------------------------------------- #
def test_unresponsive_server_surfaces_as_serving_timeout():
    listener = socket.socket()
    try:
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)  # accepts via backlog, never replies
        host, port = listener.getsockname()
        with PushClient(host, port, timeout=0.3) as client:
            with pytest.raises(ServingTimeout, match="no reply"):
                client.ping()
    finally:
        listener.close()


def test_stalled_shard_times_out_the_reader_not_the_process(serving):
    pool, host, port = serving
    session = _session_on(pool, 0)
    client = PushClient(host, port, timeout=0.5)
    assert client.feed(session, "open")["op"] == "OK"
    pool.pause_shard(0)
    try:
        client.send({"op": "END", "session": session})
        with pytest.raises(ServingTimeout):
            client.read()
    finally:
        pool.resume_shard(0)
        client.close()


# --------------------------------------------------------------------- #
# Reconnect with idempotent re-send
# --------------------------------------------------------------------- #
def test_lost_reply_is_not_refed_after_reconnect(serving):
    # The drop fires *after* dispatch: the server fed the event but its
    # reply died with the connection.  The client's re-send carries the
    # same seq, so the server acknowledges without feeding twice.
    pool, host, port = serving
    faults.install("server.reply", "drop", key="2", count=1)
    client = PushClient(host, port, timeout=2.0, retries=3, backoff=0.01, max_backoff=0.05)
    for index in range(5):
        assert client.feed("resend", f"event-{index}")["op"] == "OK"
    assert client.end("resend")["op"] == "SESSION"
    assert client.reconnects == 1
    assert pool.stats()["events_processed"] == 5  # exactly once each
    client.close()


def test_dropped_request_is_delivered_after_reconnect(serving):
    # The drop fires *before* dispatch: the request was lost entirely and
    # the re-send is its first (and only) delivery.
    pool, host, port = serving
    faults.install("server.frame", "drop", key="3", count=1)
    client = PushClient(host, port, timeout=2.0, retries=3, backoff=0.01, max_backoff=0.05)
    for index in range(5):
        assert client.feed("redeliver", f"event-{index}")["op"] == "OK"
    assert client.end("redeliver")["op"] == "SESSION"
    assert client.reconnects == 1
    assert pool.stats()["events_processed"] == 5
    client.close()


def test_client_without_retries_raises_on_a_dropped_connection(serving):
    pool, host, port = serving
    faults.install("server.frame", "drop", key="0", count=1)
    from repro.serving.server import ProtocolError

    with PushClient(host, port, timeout=2.0) as client:
        with pytest.raises((ProtocolError, OSError)):
            client.ping()


# --------------------------------------------------------------------- #
# SESSION_LOST on the wire
# --------------------------------------------------------------------- #
def test_shard_crash_answers_session_lost_not_a_hang(serving):
    pool, host, port = serving
    session = _session_on(pool, 0)
    with PushClient(host, port, timeout=2.0) as client:
        assert client.feed(session, "open")["op"] == "OK"
        assert pool.drain()
        faults.install("pool.shard", "raise", key="0", count=1)
        assert client.feed(session, "use")["op"] == "OK"  # kills the shard
        assert wait_until(lambda: pool.stats()["restarts"] == 1)
        reply = client.feed(session, "use")
        assert reply["op"] == "SESSION_LOST"
        assert reply["session"] == session
        # The id is free again: re-admission and a clean close both work.
        assert client.feed(session, "open")["op"] == "OK"
        assert client.end(session)["op"] == "SESSION"


def test_end_of_a_lost_session_reports_session_lost(serving):
    pool, host, port = serving
    session = _session_on(pool, 0)
    with PushClient(host, port, timeout=2.0) as client:
        assert client.feed(session, "open")["op"] == "OK"
        assert pool.drain()
        faults.install("pool.shard", "raise", key="0", count=1)
        assert client.feed(session, "use")["op"] == "OK"
        assert wait_until(lambda: pool.stats()["restarts"] == 1)
        reply = client.end(session)
        assert reply["op"] == "SESSION_LOST"
        assert "crashed" in reply["error"]
