"""Shared plumbing for the fault-injection suite.

Every test in this package arms :mod:`repro.testing.faults` rules; the
autouse fixture guarantees no plan (or its token directory) leaks into the
next test — or, worse, into an unrelated suite running after this one.
"""

from __future__ import annotations

import time

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset()
    yield
    faults.reset()


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
