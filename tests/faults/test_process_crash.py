"""Whole-process crash safety: SIGKILL the *main* process, restart, verify.

The engine-recovery suite kills workers; these scenarios kill the process
that owns the journal, the store manifest, or the compaction swap — the
failure a power cut or OOM kill of the mining run itself produces.  Each
scenario runs the CLI in a subprocess with a fault plan in the
environment, asserts the SIGKILL actually landed (returncode -9), then
restarts and verifies recovery: resumed mines emit byte-identical output,
re-run ingests append exactly the missing files, and fsck turns crash
debris back into a clean store.

Heavier than the in-process tests (several interpreter launches each), so
gated behind ``REPRO_FAULTS=1`` like the other chaos scenarios.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.durability.fsck import EXIT_CLEAN, EXIT_REPAIRED, audit_store
from repro.ingest.store import TraceStore

chaos = pytest.mark.skipif(
    not os.environ.get("REPRO_FAULTS"),
    reason="process-crash chaos scenario; set REPRO_FAULTS=1 to run",
)

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])
SIGKILLED = -9


def run_cli(args, faults_spec=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT
    env.pop("REPRO_FAULTS_SPEC", None)
    env.pop("REPRO_FAULTS_DIR", None)
    if faults_spec is not None:
        env["REPRO_FAULTS_SPEC"] = faults_spec
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def write_workload(path, *, offset=0):
    """A small store-able workload: eight distinct frequent roots, so an
    in-process stealing mine journals one entry per root unit."""
    chunks = []
    for _ in range(2):
        for i in range(8):
            events = [f"e{(i + j + offset) % 8}" for j in range(3)]
            chunks.append("\n".join(events))
    path.write_text("\n\n".join(chunks) + "\n", encoding="utf-8")


def mine_args(workload, save, checkpoint=None):
    args = [
        "mine-patterns",
        "--input", str(workload),
        "--min-support", "2",
        "--backend", "stealing",
        "--workers", "1",
        "--save", str(save),
    ]
    if checkpoint is not None:
        args += ["--checkpoint", str(checkpoint)]
    return args


@chaos
@pytest.mark.parametrize(
    ("site", "kill_entry"),
    [
        # Mid-append: the frame header reached the file, the payload never
        # did — the classic torn tail the framing must truncate on resume.
        ("checkpoint.append", "1"),
        ("checkpoint.append", "3"),
        # Post-append: the journal tail is clean; resume reuses everything
        # up to and including the killed entry.
        ("checkpoint.commit", "5"),
    ],
)
def test_sigkill_mid_journal_append_resumes_byte_identical(tmp_path, site, kill_entry):
    workload = tmp_path / "workload.txt"
    write_workload(workload)
    cold = run_cli(mine_args(workload, tmp_path / "cold.json"))
    assert cold.returncode == 0, cold.stderr

    ckpt = tmp_path / "ckpt"
    crashed = run_cli(
        mine_args(workload, tmp_path / "crashed.json", checkpoint=ckpt),
        faults_spec=f"{site}:kill:key={kill_entry}",
    )
    assert crashed.returncode == SIGKILLED, crashed.stderr
    assert not (tmp_path / "crashed.json").exists()

    resumed = run_cli(mine_args(workload, tmp_path / "resumed.json", checkpoint=ckpt))
    assert resumed.returncode == 0, resumed.stderr
    match = re.search(r"checkpoint: resumed (\d+) completed units", resumed.stderr)
    assert match is not None, resumed.stderr
    # Strictly fewer units were re-mined than a cold start runs: every
    # entry journaled before the kill was reused.
    assert int(match.group(1)) >= int(kill_entry)
    cold_bytes = (tmp_path / "cold.json").read_bytes()
    assert (tmp_path / "resumed.json").read_bytes() == cold_bytes
    assert json.loads(cold_bytes)["patterns"]


@chaos
def test_sigkill_between_payload_and_manifest_commit_in_multi_file_ingest(tmp_path):
    files = []
    for index in range(3):
        path = tmp_path / f"in{index}.txt"
        write_workload(path, offset=index)
        files.append(str(path))

    reference = run_cli(["ingest", "--store", str(tmp_path / "ref"), "--input", *files])
    assert reference.returncode == 0, reference.stderr

    store_dir = tmp_path / "store"
    # The store.manifest fault point sits after the batch payload is
    # written and fsynced, before the manifest replace: killing at
    # key=2 dies mid-commit of the second file.
    crashed = run_cli(
        ["ingest", "--store", str(store_dir), "--input", *files],
        faults_spec="store.manifest:kill:key=2",
    )
    assert crashed.returncode == SIGKILLED, crashed.stderr

    interrupted = TraceStore.open(store_dir)
    assert len(interrupted.batches) == 1  # second commit never landed

    # Re-running the same command appends exactly the remaining files:
    # file 0 is skipped by source identity, file 1's torn payload is
    # truncated by the append path, files 1 and 2 are committed.
    rerun = run_cli(["ingest", "--store", str(store_dir), "--input", *files])
    assert rerun.returncode == 0, rerun.stderr
    assert f"skipping {files[0]}" in rerun.stderr
    assert f"skipping {files[1]}" not in rerun.stderr

    recovered = TraceStore.open(store_dir)
    expected = TraceStore.open(tmp_path / "ref")
    assert len(recovered.batches) == 3
    assert recovered.fingerprint == expected.fingerprint  # chain intact, no duplicates
    assert len(recovered) == len(expected)
    assert audit_store(store_dir).exit_code == EXIT_CLEAN


@chaos
def test_sigkill_mid_compaction_leaves_recoverable_store(tmp_path):
    first = tmp_path / "first.txt"
    second = tmp_path / "second.txt"
    write_workload(first)
    write_workload(second, offset=3)
    store_dir = tmp_path / "store"
    ingest = run_cli(["ingest", "--store", str(store_dir), "--input", str(first), str(second)])
    assert ingest.returncode == 0, ingest.stderr
    before = TraceStore.open(store_dir)

    crashed = run_cli(
        ["compact", str(store_dir), "--delete-batch", "0"],
        faults_spec="compact.swap:kill",
    )
    assert crashed.returncode == SIGKILLED, crashed.stderr

    # The manifest never swapped: the old lineage is fully intact, the
    # half-written generation is debris fsck removes.
    report = audit_store(store_dir)
    assert report.exit_code == EXIT_REPAIRED
    assert any("orphaned data file" in line for line in report.issues)
    assert audit_store(store_dir).exit_code == EXIT_CLEAN
    surviving = TraceStore.open(store_dir)
    assert surviving.fingerprint == before.fingerprint
    assert surviving.generation == 0

    # And the retried compaction completes on the repaired store.
    # (--delete-batch was journaled into the manifest pre-crash, so the
    # tombstone is still set.)
    retried = run_cli(["compact", str(store_dir)])
    assert retried.returncode == 0, retried.stderr
    compacted = TraceStore.open(store_dir)
    assert compacted.generation == 1
    assert compacted.compacted_from == before.fingerprint
    assert len(compacted.batches) == 1
    assert audit_store(store_dir).exit_code == EXIT_CLEAN
