"""Tests for the event vocabulary."""

import pytest

from repro.core.errors import VocabularyError
from repro.core.events import EventVocabulary


def test_intern_assigns_dense_ids():
    vocab = EventVocabulary()
    assert vocab.intern("lock") == 0
    assert vocab.intern("unlock") == 1
    assert vocab.intern("lock") == 0
    assert len(vocab) == 2


def test_constructor_interns_initial_labels():
    vocab = EventVocabulary(["a", "b", "a"])
    assert len(vocab) == 2
    assert vocab.id_of("b") == 1


def test_label_round_trip():
    vocab = EventVocabulary()
    for label in ["x", "y", "z"]:
        vocab.intern(label)
    assert vocab.label_of(vocab.id_of("y")) == "y"
    assert vocab.labels() == ("x", "y", "z")


def test_id_of_unknown_label_raises():
    vocab = EventVocabulary(["a"])
    with pytest.raises(VocabularyError):
        vocab.id_of("missing")


def test_label_of_unknown_id_raises():
    vocab = EventVocabulary(["a"])
    with pytest.raises(VocabularyError):
        vocab.label_of(5)
    with pytest.raises(VocabularyError):
        vocab.label_of(-1)


def test_encode_with_registration():
    vocab = EventVocabulary()
    assert vocab.encode(["a", "b", "a"], register=True) == (0, 1, 0)


def test_encode_without_registration_raises_on_unknown():
    vocab = EventVocabulary(["a"])
    with pytest.raises(VocabularyError):
        vocab.encode(["a", "b"])


def test_decode_inverts_encode():
    vocab = EventVocabulary()
    encoded = vocab.encode(["m", "n", "m", "o"], register=True)
    assert vocab.decode(encoded) == ("m", "n", "m", "o")


def test_contains_and_iteration():
    vocab = EventVocabulary(["a", "b"])
    assert "a" in vocab
    assert "c" not in vocab
    assert list(vocab) == ["a", "b"]


def test_non_string_labels_are_supported():
    vocab = EventVocabulary()
    assert vocab.intern(("Class", "method")) == 0
    assert vocab.intern(42) == 1
    assert vocab.label_of(0) == ("Class", "method")
