"""Tests for the per-event position indexes."""

from repro.core.positions import PositionIndex, SequencePositions


def test_positions_of_and_count():
    positions = SequencePositions([0, 1, 0, 2, 0])
    assert positions.positions_of(0) == [0, 2, 4]
    assert positions.count(0) == 3
    assert positions.count(9) == 0
    assert positions.positions_of(9) == []
    assert positions.length == 5


def test_first_after_and_at_or_after():
    positions = SequencePositions([5, 6, 5, 7])
    assert positions.first_after(5, -1) == 0
    assert positions.first_after(5, 0) == 2
    assert positions.first_after(5, 2) is None
    assert positions.first_at_or_after(6, 1) == 1
    assert positions.first_at_or_after(6, 2) is None


def test_last_before():
    positions = SequencePositions([5, 6, 5, 7])
    assert positions.last_before(5, 2) == 0
    assert positions.last_before(5, 3) == 2
    assert positions.last_before(5, 0) is None
    assert positions.last_before(9, 3) is None


def test_occurs_between_open_interval():
    positions = SequencePositions([1, 2, 3, 2, 1])
    assert positions.occurs_between(2, 0, 2)  # position 1
    assert not positions.occurs_between(2, 1, 3)  # strictly between 1 and 3 there is nothing = position 2 only -> 3 is event id... check
    assert positions.occurs_between(3, 1, 3)
    assert not positions.occurs_between(1, 0, 4)
    assert not positions.occurs_between(2, 2, 3)  # empty open interval


def test_count_between():
    positions = SequencePositions([1, 2, 2, 2, 1])
    assert positions.count_between(2, 0, 4) == 3
    assert positions.count_between(2, 1, 3) == 1
    assert positions.count_between(1, 0, 4) == 0


def test_distinct_events():
    positions = SequencePositions([4, 4, 5])
    assert set(positions.distinct_events()) == {4, 5}


def test_position_index_supports():
    index = PositionIndex([[0, 1, 0], [1, 2], [2]])
    assert len(index) == 3
    assert index.sequence_support(0) == 1
    assert index.sequence_support(1) == 2
    assert index.sequence_support(2) == 2
    assert index.instance_support(0) == 2
    assert index.instance_support(2) == 2
    assert index.distinct_events() == (0, 1, 2)
    assert index[0].count(0) == 2
