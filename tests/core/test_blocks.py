"""Property tests: the columnar block pipelines match the tuple-based oracle.

The block path (``InstanceBlock`` + ``AlphabetIndex`` + the ``*_block``
projection/closure functions) is the implementation the miners run; the
oracle in :mod:`repro.core.instances` and the list-based reference
functions in :mod:`repro.core.projection` define what it must compute.
Randomised traces (hypothesis) assert agreement on instances, support,
forward/backward extensions and all three closure verdicts, and that the
serial and process-pool mining pipelines stay bit-identical on top of
blocks.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.core.blocks import InstanceBlock, PositionBlock
from repro.core.instances import PatternInstance, find_instances
from repro.core.positions import PositionIndex
from repro.core.projection import (
    AlphabetIndex,
    backward_extension_events,
    backward_extension_events_block,
    forward_extensions,
    forward_extensions_block,
    project_extension_block,
    project_rows_in_sequence,
    singleton_block_of,
    singleton_blocks,
    singleton_instances,
)
from repro.core.sequence import SequenceDatabase
from repro.engine import ProcessPoolBackend, SerialBackend
from repro.patterns.closure import (
    infix_closure_violation,
    infix_closure_violation_block,
    is_closed,
    is_closed_block,
)
from repro.patterns.closed_miner import mine_closed_patterns
from repro.rules.premise_miner import initial_premise_projections

# Small alphabets make repetitions (the interesting case) likely.
sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=14),
    min_size=1,
    max_size=4,
)
pattern_strategy = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3)


def _encode(sequences):
    return [tuple(sequence) for sequence in sequences]


# --------------------------------------------------------------------- #
# Block structure round-trips
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_block_roundtrips_oracle_instances(sequences, pattern):
    encoded = _encode(sequences)
    oracle = find_instances(encoded, tuple(pattern))
    block = InstanceBlock.from_instances(oracle)
    assert len(block) == len(oracle)
    assert block.to_instances() == oracle
    assert block.to_tuple() == tuple(oracle)
    assert list(block) == oracle


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=30, deadline=None)
def test_block_pickles_to_equal_block(sequences, pattern):
    encoded = _encode(sequences)
    block = InstanceBlock.from_instances(find_instances(encoded, tuple(pattern)))
    clone = pickle.loads(pickle.dumps(block))
    assert clone == block
    assert clone.to_instances() == block.to_instances()
    assert clone.nbytes() == block.nbytes()


@given(sequences=sequences_strategy)
@settings(max_examples=40, deadline=None)
def test_singleton_blocks_match_singleton_instances(sequences):
    encoded = _encode(sequences)
    blocks = singleton_blocks(encoded)
    lists = singleton_instances(encoded)
    assert set(blocks) == set(lists)
    for event, block in blocks.items():
        assert block.to_instances() == lists[event]


# --------------------------------------------------------------------- #
# Projection: forward and backward extensions
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_forward_extensions_block_matches_reference_and_oracle(sequences, pattern):
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    base = find_instances(encoded, pattern)
    node = AlphabetIndex(index, pattern)
    block_extensions = forward_extensions_block(
        encoded, index, node, InstanceBlock.from_instances(base)
    )
    reference = forward_extensions(encoded, index, pattern, base)
    assert set(block_extensions) == set(reference)
    for event, extension_block in block_extensions.items():
        # Bit-identical to the reference path, including row order...
        assert extension_block.to_instances() == reference[event]
        # ...and semantically exactly the oracle's instance set.
        assert sorted(extension_block) == sorted(find_instances(encoded, pattern + (event,)))


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_project_extension_block_matches_full_projection(sequences, pattern):
    """The targeted single-event projection agrees with the full one, row for row."""
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    base = InstanceBlock.from_instances(find_instances(encoded, pattern))
    node = AlphabetIndex(index, pattern)
    full = forward_extensions_block(encoded, index, node, base)
    for event in range(5):
        targeted = project_extension_block(encoded, index, node, base, event)
        if event in full:
            assert targeted == full[event]
        else:
            assert len(targeted) == 0


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_project_rows_in_sequence_matches_block_projection_chain(sequences, pattern):
    """The per-sequence chained projector stays in lockstep with its block
    twin: chaining project_extension_block over the whole database and
    slicing one sequence's group must equal the sequence-local chain."""
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    nodes = [AlphabetIndex(index, pattern[:1])]
    for event in pattern[1:]:
        nodes.append(nodes[-1].extend(event))
    block = singleton_block_of(index, pattern[0])
    for step, event in enumerate(pattern[1:]):
        block = project_extension_block(encoded, index, nodes[step], block, event)
    by_sequence = {sid: [] for sid in range(len(encoded))}
    for instance in block:
        by_sequence[instance.sequence_index].append((instance.start, instance.end))
    for sid, sequence in enumerate(encoded):
        positions = index[sid]
        first = positions.positions_of(pattern[0])
        rows = project_rows_in_sequence(
            sequence,
            positions.table(),
            nodes,
            pattern,
            sid,
            [(position, position) for position in first],
        )
        assert rows == by_sequence[sid]


@given(sequences=sequences_strategy)
@settings(max_examples=40, deadline=None)
def test_singleton_block_of_matches_singleton_blocks(sequences):
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    singles = singleton_blocks(encoded)
    for event, block in singles.items():
        assert singleton_block_of(index, event) == block


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_wire_block_reconstructs_ends_exactly(sequences, pattern):
    """Dropping the ends column on the wire loses nothing: the pattern walk
    at the coordinator rebuilds the identical block (pickled or not)."""
    encoded = _encode(sequences)
    pattern = tuple(pattern)
    block = InstanceBlock.from_instances(find_instances(encoded, pattern))
    wire = block.to_wire()
    assert wire.nbytes() < block.nbytes() or len(block) == 0
    assert wire.to_block(encoded, pattern) == block
    shipped = pickle.loads(pickle.dumps(wire))
    assert shipped.to_tuple(encoded, pattern) == block.to_tuple()
    assert len(pickle.dumps(wire)) < len(pickle.dumps(block))


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_backward_extension_events_block_matches_reference(sequences, pattern):
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    base = find_instances(encoded, pattern)
    node = AlphabetIndex(index, pattern)
    block_events = backward_extension_events_block(
        encoded, index, node, InstanceBlock.from_instances(base)
    )
    assert block_events == backward_extension_events(encoded, index, pattern, base)


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_alphabet_index_matches_per_event_scans(sequences, pattern):
    """The merged boundary cache answers exactly the per-event bisect queries."""
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    alphabet = frozenset(pattern)
    node = AlphabetIndex(index, pattern)
    for sid, sequence in enumerate(encoded):
        positions = index[sid]
        for probe in range(-1, len(sequence) + 1):
            first = min(
                (p for e in alphabet if (p := positions.first_after(e, probe)) is not None),
                default=None,
            )
            last = max(
                (p for e in alphabet if (p := positions.last_before(e, probe)) is not None),
                default=None,
            )
            assert node.first_after(sid, probe) == first
            assert node.last_before(sid, probe) == last


# --------------------------------------------------------------------- #
# Closure verdicts
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, pattern=pattern_strategy, check_infix=st.booleans())
@settings(max_examples=60, deadline=None)
def test_closure_verdicts_match_reference(sequences, pattern, check_infix):
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    base = find_instances(encoded, pattern)
    if not base:
        return
    node = AlphabetIndex(index, pattern)
    block = InstanceBlock.from_instances(base)
    extensions = forward_extensions(encoded, index, pattern, base)
    extension_blocks = forward_extensions_block(encoded, index, node, block)
    assert is_closed_block(
        encoded, index, node, block, extension_blocks, check_infix=check_infix
    ) == is_closed(encoded, index, pattern, base, extensions, check_infix=check_infix)


@given(sequences=sequences_strategy, pattern=pattern_strategy)
@settings(max_examples=60, deadline=None)
def test_infix_violations_match_reference(sequences, pattern):
    encoded = _encode(sequences)
    index = PositionIndex(encoded)
    pattern = tuple(pattern)
    base = find_instances(encoded, pattern)
    if not base:
        return
    node = AlphabetIndex(index, pattern)
    block = InstanceBlock.from_instances(base)
    assert infix_closure_violation_block(encoded, index, node, block) == infix_closure_violation(
        encoded, index, pattern, base
    )


# --------------------------------------------------------------------- #
# Rule-side projections
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy)
@settings(max_examples=40, deadline=None)
def test_initial_premise_projections_are_columnar_earliest_occurrences(sequences):
    encoded = _encode(sequences)
    projections = initial_premise_projections(encoded)
    for event, block in projections.items():
        assert isinstance(block, PositionBlock)
        rows = list(block)
        expected = [
            (sid, sequence.index(event))
            for sid, sequence in enumerate(encoded)
            if event in sequence
        ]
        assert rows == expected


# --------------------------------------------------------------------- #
# End-to-end: block pipeline across backends, instances vs oracle
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, max_shards=st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_mined_instances_match_oracle_across_serial_shard_paths(sequences, max_shards):
    db = SequenceDatabase.from_sequences([[str(event) for event in s] for s in sequences])
    serial = mine_closed_patterns(db, min_support=2, collect_instances=True)
    sharded = mine_closed_patterns(
        db, min_support=2, collect_instances=True, backend=SerialBackend(max_shards=max_shards)
    )
    assert serial.patterns == sharded.patterns
    for mined in serial.patterns:
        encoded_pattern = db.vocabulary.encode(mined.events)
        oracle = tuple(find_instances(db.encoded, encoded_pattern))
        assert mined.instances == oracle
        assert mined.support == len(oracle)


@given(sequences=sequences_strategy)
@settings(max_examples=4, deadline=None)
def test_mined_instances_survive_the_process_pool(sequences):
    db = SequenceDatabase.from_sequences([[str(event) for event in s] for s in sequences])
    serial = mine_closed_patterns(db, min_support=2, collect_instances=True)
    pooled = mine_closed_patterns(
        db, min_support=2, collect_instances=True, backend=ProcessPoolBackend(workers=2)
    )
    assert serial.patterns == pooled.patterns
    for left, right in zip(serial.patterns, pooled.patterns):
        assert left.instances == right.instances
        assert all(isinstance(instance, PatternInstance) for instance in left.instances)


def test_shipped_bytes_counter_tracks_collected_instances():
    db = SequenceDatabase.from_sequences(
        [["a", "b", "c", "a", "b", "c"], ["a", "x", "b", "c"], ["b", "a", "c", "b"]]
    )
    with_instances = mine_closed_patterns(db, min_support=2, collect_instances=True)
    without = mine_closed_patterns(db, min_support=2, collect_instances=False)
    assert with_instances.stats.shipped_bytes > 0
    assert without.stats.shipped_bytes == 0
    # The allocation counter sees the same search either way.
    assert (
        with_instances.stats.instances_materialized
        == without.stats.instances_materialized
        > 0
    )
