"""Tests for sequences and the sequence database."""

import pytest

from repro.core.errors import DataFormatError
from repro.core.sequence import Sequence, SequenceDatabase


def test_sequence_basics():
    sequence = Sequence(["a", "b", "c"], name="t1", attributes={"component": "tx"})
    assert len(sequence) == 3
    assert sequence[1] == "b"
    assert list(sequence) == ["a", "b", "c"]
    assert sequence.attributes["component"] == "tx"


def test_sequence_equality_and_hash():
    assert Sequence(["a", "b"], name="x") == Sequence(["a", "b"], name="x")
    assert Sequence(["a", "b"]) != Sequence(["a", "c"])
    assert len({Sequence(["a"]), Sequence(["a"])}) == 1


def test_database_from_sequences_and_access():
    db = SequenceDatabase.from_sequences([["a", "b"], ["b", "c", "a"]])
    assert len(db) == 2
    assert db[0] == ("a", "b")
    assert db[1] == ("b", "c", "a")
    assert list(db) == [("a", "b"), ("b", "c", "a")]


def test_database_add_returns_index_and_keeps_names():
    db = SequenceDatabase()
    index = db.add(["a", "b"], name="trace-0")
    assert index == 0
    assert db.name(0) == "trace-0"
    assert db.sequence(0).name == "trace-0"


def test_database_add_accepts_sequence_objects():
    db = SequenceDatabase()
    db.add(Sequence(["a", "b"], name="named"))
    assert db.name(0) == "named"


def test_encoded_view_shares_vocabulary():
    db = SequenceDatabase.from_sequences([["a", "b"], ["b", "a"]])
    assert db.encoded_sequence(0) == (0, 1)
    assert db.encoded_sequence(1) == (1, 0)
    assert db.alphabet_size() == 2
    assert set(db.labels()) == {"a", "b"}


def test_statistics():
    db = SequenceDatabase.from_sequences([["a"] * 4, ["b"] * 2])
    assert db.total_events() == 6
    assert db.average_length() == 3.0
    stats = db.describe()
    assert stats["sequences"] == 2.0
    assert stats["max_length"] == 4.0
    assert stats["min_length"] == 2.0


def test_empty_database_statistics():
    db = SequenceDatabase()
    assert db.average_length() == 0.0
    assert db.describe()["avg_length"] == 0.0


def test_absolute_support_relative_and_absolute():
    db = SequenceDatabase.from_sequences([["a"]] * 10)
    assert db.absolute_support(0.5) == 5
    assert db.absolute_support(1) == 10  # 1.0 is relative: all sequences
    assert db.absolute_support(3) == 3
    assert db.absolute_support(0.001) == 1  # never below 1


def test_absolute_support_rejects_nonpositive():
    db = SequenceDatabase.from_sequences([["a"]])
    with pytest.raises(DataFormatError):
        db.absolute_support(0)
    with pytest.raises(DataFormatError):
        db.absolute_support(-2)
