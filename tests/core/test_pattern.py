"""Tests for the pattern algebra."""

import pytest

from repro.core.errors import PatternError
from repro.core.pattern import (
    alphabet,
    as_pattern,
    concat,
    first,
    format_pattern,
    is_proper_subsequence,
    is_subsequence,
    is_supersequence,
    last,
    prefixes,
    subpatterns,
    suffixes,
)


def test_first_and_last():
    assert first(("a", "b", "c")) == "a"
    assert last(("a", "b", "c")) == "c"


def test_first_and_last_reject_empty():
    with pytest.raises(PatternError):
        first(())
    with pytest.raises(PatternError):
        last(())


def test_concat():
    assert concat(("a",), ("b", "c"), ()) == ("a", "b", "c")
    assert concat() == ()


def test_as_pattern_normalises():
    assert as_pattern(["a", "b"]) == ("a", "b")


def test_subsequence_positive_cases():
    assert is_subsequence((), ("a", "b"))
    assert is_subsequence(("a",), ("a", "b"))
    assert is_subsequence(("a", "c"), ("a", "b", "c"))
    assert is_subsequence(("b", "b"), ("a", "b", "c", "b"))


def test_subsequence_negative_cases():
    assert not is_subsequence(("c", "a"), ("a", "b", "c"))
    assert not is_subsequence(("a", "a"), ("a", "b"))
    assert not is_subsequence(("a", "b", "c", "d"), ("a", "b", "c"))


def test_subsequence_respects_multiplicity():
    # <a, a> requires two occurrences of a.
    assert is_subsequence(("a", "a"), ("a", "x", "a"))
    assert not is_subsequence(("a", "a", "a"), ("a", "x", "a"))


def test_proper_subsequence_and_supersequence():
    assert is_proper_subsequence(("a",), ("a", "b"))
    assert not is_proper_subsequence(("a", "b"), ("a", "b"))
    assert is_supersequence(("a", "b"), ("b",))


def test_alphabet():
    assert alphabet(("a", "b", "a")) == {"a", "b"}


def test_subpatterns_enumerates_unique_subsequences():
    result = set(subpatterns(("a", "b", "a")))
    assert result == {
        ("a",),
        ("b",),
        ("a", "b"),
        ("b", "a"),
        ("a", "a"),
        ("a", "b", "a"),
    }


def test_subpatterns_with_empty():
    assert () in set(subpatterns(("a",), include_empty=True))


def test_prefixes_and_suffixes():
    assert list(prefixes(("a", "b", "c"))) == [("a",), ("a", "b")]
    assert list(prefixes(("a", "b"), proper=False)) == [("a",), ("a", "b")]
    assert list(suffixes(("a", "b", "c"))) == [("c",), ("b", "c")]
    assert list(suffixes(("a", "b"), proper=False)) == [("b",), ("a", "b")]


def test_format_pattern():
    assert format_pattern(("lock", "unlock")) == "<lock, unlock>"
