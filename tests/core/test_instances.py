"""Tests for the QRE instance semantics (Definition 4.1)."""

import pytest

from repro.core.errors import PatternError
from repro.core.instances import (
    PatternInstance,
    find_instances,
    find_instances_in_sequence,
    gap_events,
    instance_support,
    instances_correspond,
    sequence_support,
)


def test_single_event_instances_are_occurrences():
    assert find_instances_in_sequence(["a", "b", "a"], ["a"]) == [(0, 0), (2, 2)]


def test_simple_instance_with_gap():
    # Events outside the pattern alphabet may appear freely in gaps.
    assert find_instances_in_sequence(["lock", "use", "unlock"], ["lock", "unlock"]) == [(0, 2)]


def test_alphabet_event_in_gap_breaks_instance():
    # A second 'lock' between the pattern events violates the QRE.
    trace = ["lock", "lock", "unlock"]
    assert find_instances_in_sequence(trace, ["lock", "unlock"]) == [(1, 2)]


def test_total_ordering_requirement():
    # Mirrors the telephone-switching counter-example of Section 3.2: an
    # out-of-order repetition of a pattern event invalidates the match.
    pattern = ["off_hook", "ring_tone", "answer", "connection_on"]
    bad_trace = ["off_hook", "ring_tone", "answer", "ring_tone", "connection_on"]
    assert find_instances_in_sequence(bad_trace, pattern) == []


def test_one_to_one_correspondence_requirement():
    pattern = ["answer", "connection_on"]
    bad_trace = ["answer", "answer", "connection_on"]
    # Only the second 'answer' starts a valid instance.
    assert find_instances_in_sequence(bad_trace, pattern) == [(1, 2)]


def test_repeated_event_pattern():
    assert find_instances_in_sequence(["a", "a", "a"], ["a", "a"]) == [(0, 1), (1, 2)]
    assert find_instances_in_sequence(["a", "x", "a"], ["a", "a"]) == [(0, 2)]


def test_instance_determined_by_start():
    # At most one instance can start at any given position.
    trace = ["a", "b", "a", "b"]
    spans = find_instances_in_sequence(trace, ["a", "b"])
    starts = [start for start, _ in spans]
    assert len(starts) == len(set(starts))


def test_empty_pattern_rejected():
    with pytest.raises(PatternError):
        find_instances_in_sequence(["a"], [])


def test_find_instances_across_database():
    db = [["a", "b"], ["b", "a", "b"], ["c"]]
    instances = find_instances(db, ["a", "b"])
    assert instances == [PatternInstance(0, 0, 1), PatternInstance(1, 1, 2)]
    assert instance_support(db, ["a", "b"]) == 2
    assert sequence_support(db, ["a", "b"]) == 2
    assert sequence_support(db, ["c"]) == 1


def test_instances_repeat_within_a_sequence():
    db = [["lock", "unlock", "lock", "x", "unlock"]]
    assert instance_support(db, ["lock", "unlock"]) == 2


def test_correspondence():
    sub = [PatternInstance(0, 2, 3)]
    sup = [PatternInstance(0, 1, 5)]
    assert instances_correspond(sub, sup)
    assert not instances_correspond([PatternInstance(0, 0, 6)], sup)
    assert not instances_correspond([PatternInstance(1, 2, 3)], sup)


def test_correspondence_requires_unique_targets():
    sub = [PatternInstance(0, 2, 3), PatternInstance(0, 3, 4)]
    sup = [PatternInstance(0, 0, 9)]
    # Two sub-instances cannot map to the same super-instance.
    assert not instances_correspond(sub, sup)
    sup_two = [PatternInstance(0, 0, 9), PatternInstance(0, 1, 8)]
    assert instances_correspond(sub, sup_two)


def test_gap_events_reports_gap_index_and_position():
    trace = ["a", "x", "b", "y", "z", "c"]
    events = list(gap_events(trace, ["a", "b", "c"], (0, 5)))
    assert (1, 1) in events  # 'x' in the gap before the 2nd pattern event
    assert (2, 3) in events and (2, 4) in events  # 'y', 'z' before the 3rd
    assert len(events) == 3
