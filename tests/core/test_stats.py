"""Tests for mining statistics and the timer helper."""

import time

from repro.core.stats import MiningStats, Timer


def test_counters_default_to_zero():
    stats = MiningStats()
    assert stats.visited == 0
    assert stats.emitted == 0
    assert stats.elapsed_seconds == 0.0


def test_bump_named_counters():
    stats = MiningStats()
    stats.bump("pruned_absorption")
    stats.bump("pruned_absorption", 4)
    assert stats.extra["pruned_absorption"] == 5
    assert stats.as_dict()["extra_pruned_absorption"] == 5.0


def test_start_stop_accumulates_elapsed_time():
    stats = MiningStats()
    stats.start()
    time.sleep(0.01)
    stats.stop()
    first = stats.elapsed_seconds
    assert first > 0
    stats.start()
    time.sleep(0.01)
    stats.stop()
    assert stats.elapsed_seconds > first


def test_stop_without_start_is_noop():
    stats = MiningStats()
    stats.stop()
    assert stats.elapsed_seconds == 0.0


def test_as_dict_contains_standard_counters():
    stats = MiningStats(visited=3, emitted=2, pruned_support=1)
    payload = stats.as_dict()
    assert payload["visited"] == 3.0
    assert payload["emitted"] == 2.0
    assert payload["pruned_support"] == 1.0


def test_timer_context_manager():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.seconds >= 0.005
