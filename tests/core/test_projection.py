"""Tests for the incremental (projected-database) instance computation."""

import random

from repro.core.instances import PatternInstance, find_instances
from repro.core.positions import PositionIndex
from repro.core.projection import (
    backward_extension_events,
    backward_extension_instance,
    forward_extensions,
    singleton_instances,
)


def _encode(sequences):
    return [tuple(sequence) for sequence in sequences]


def test_singleton_instances():
    db = _encode([[0, 1, 0], [1]])
    singles = singleton_instances(db)
    assert singles[0] == [PatternInstance(0, 0, 0), PatternInstance(0, 2, 2)]
    assert singles[1] == [PatternInstance(0, 1, 1), PatternInstance(1, 0, 0)]


def test_forward_extensions_match_oracle_on_simple_case():
    db = _encode([[0, 2, 1, 0, 1]])
    index = PositionIndex(db)
    base_instances = find_instances(db, (0,))
    extensions = forward_extensions(db, index, (0,), base_instances)
    assert extensions[1] == find_instances(db, (0, 1))
    assert extensions[2] == find_instances(db, (0, 2))


def test_forward_extension_respects_gap_exclusion():
    # Pattern (0, 1): extending with 2 requires no 2 inside the instance gaps.
    db = _encode([[0, 2, 1, 2], [0, 1, 2]])
    index = PositionIndex(db)
    base = find_instances(db, (0, 1))
    extensions = forward_extensions(db, index, (0, 1), base)
    # In sequence 0 the gap contains a 2, so only sequence 1 extends.
    assert extensions[2] == [PatternInstance(1, 0, 2)]
    assert extensions[2] == find_instances(db, (0, 1, 2))


def test_forward_extension_with_repeated_alphabet_event():
    db = _encode([[0, 1, 0, 1]])
    index = PositionIndex(db)
    base = find_instances(db, (0, 1))
    extensions = forward_extensions(db, index, (0, 1), base)
    assert extensions[0] == find_instances(db, (0, 1, 0))


def test_forward_extensions_against_oracle_randomised():
    rng = random.Random(42)
    for _ in range(30):
        db = _encode(
            [
                [rng.randrange(4) for _ in range(rng.randint(1, 15))]
                for _ in range(rng.randint(1, 4))
            ]
        )
        index = PositionIndex(db)
        pattern = tuple(rng.randrange(4) for _ in range(rng.randint(1, 3)))
        base = find_instances(db, pattern)
        extensions = forward_extensions(db, index, pattern, base)
        seen_events = {event for sequence in db for event in sequence}
        for event in seen_events:
            expected = find_instances(db, pattern + (event,))
            assert sorted(extensions.get(event, [])) == sorted(expected)


def test_backward_extension_instance():
    db = _encode([[2, 9, 0, 1]])
    index = PositionIndex(db)
    instance = PatternInstance(0, 2, 3)
    extended = backward_extension_instance(index, (0, 1), instance, 2)
    assert extended == PatternInstance(0, 0, 3)
    assert backward_extension_instance(index, (0, 1), instance, 7) is None


def test_backward_extension_instance_with_alphabet_event():
    # ``1`` is in the pattern alphabet and its last occurrence before the
    # instance start coincides with the last alphabet occurrence; that
    # position is a valid backward extension (the pattern repeats it).
    db = _encode([[0, 1, 0, 1]])
    index = PositionIndex(db)
    instance = PatternInstance(0, 2, 3)  # instance of (0, 1) starting at 2
    extended = backward_extension_instance(index, (0, 1), instance, 1)
    assert extended == PatternInstance(0, 1, 3)
    # The oracle agrees: <1, 0, 1> has exactly that instance.
    assert find_instances(db, (1, 0, 1)) == [PatternInstance(0, 1, 3)]


def test_backward_extension_instance_blocked_by_later_alphabet_event():
    # The last occurrence of ``2`` before the start is separated from the
    # instance by a later alphabet event, so no backward extension exists.
    db = _encode([[2, 0, 1, 0, 1]])
    index = PositionIndex(db)
    instance = PatternInstance(0, 3, 4)  # second instance of (0, 1)
    assert backward_extension_instance(index, (0, 1), instance, 2) is None


def test_backward_extension_events_full_coverage():
    # Event 9 immediately precedes every instance of (0, 1).
    db = _encode([[9, 0, 1], [3, 9, 0, 5, 1]])
    index = PositionIndex(db)
    base = find_instances(db, (0, 1))
    assert backward_extension_events(db, index, (0, 1), base) == {9}


def test_backward_extension_events_empty_when_not_shared():
    db = _encode([[9, 0, 1], [8, 0, 1]])
    index = PositionIndex(db)
    base = find_instances(db, (0, 1))
    assert backward_extension_events(db, index, (0, 1), base) == set()


def test_backward_extension_events_respect_gap_exclusion():
    # 9 precedes both instances but also occurs inside the gap of the second,
    # so <9, 0, 1> cannot absorb every instance.
    db = _encode([[9, 0, 1], [9, 0, 9, 1]])
    index = PositionIndex(db)
    base = find_instances(db, (0, 1))
    assert 9 not in backward_extension_events(db, index, (0, 1), base)


def test_backward_extension_events_against_oracle_randomised():
    rng = random.Random(7)
    for _ in range(30):
        db = _encode(
            [
                [rng.randrange(4) for _ in range(rng.randint(1, 12))]
                for _ in range(rng.randint(1, 3))
            ]
        )
        index = PositionIndex(db)
        pattern = tuple(rng.randrange(4) for _ in range(rng.randint(1, 2)))
        base = find_instances(db, pattern)
        if not base:
            continue
        events = backward_extension_events(db, index, pattern, base)
        for event in events:
            extended = find_instances(db, (event,) + pattern)
            # Every base instance must be covered by a backward-extended instance.
            assert len(extended) >= len(base)
            ends_extended = {(i.sequence_index, i.end) for i in extended}
            assert all((i.sequence_index, i.end) in ends_extended for i in base)
