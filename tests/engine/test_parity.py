"""Serial vs. parallel parity: the engine must not change mining results.

The contract of the sharded engine is that the execution backend is
invisible in the output: patterns and rules come back bit-identical — same
elements, same order, same supports and instances — whatever the backend.
The hypothesis tests drive randomized databases through the serial
reference, a force-sharded serial backend (exercising the plan/merge path
in-process on every example) and, more sparingly, a real process pool.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sequence import SequenceDatabase
from repro.engine import ProcessPoolBackend, SerialBackend
from repro.patterns.closed_miner import mine_closed_patterns
from repro.patterns.full_miner import mine_frequent_patterns
from repro.rules.full_miner import mine_all_rules
from repro.rules.nonredundant_miner import mine_non_redundant_rules

sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4).map(str), min_size=1, max_size=14),
    min_size=1,
    max_size=5,
)


def _database(sequences):
    return SequenceDatabase.from_sequences(sequences)


# --------------------------------------------------------------------- #
# Force-sharded serial backend: cheap enough to run on every example.
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, max_shards=st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_sharded_pattern_mining_matches_serial(sequences, max_shards):
    db = _database(sequences)
    sharded = SerialBackend(max_shards=max_shards)
    for miner in (mine_closed_patterns, mine_frequent_patterns):
        serial = miner(db, min_support=2)
        parallel_path = miner(db, min_support=2, backend=sharded)
        assert serial.patterns == parallel_path.patterns
        assert serial.min_support == parallel_path.min_support


@given(sequences=sequences_strategy, max_shards=st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_sharded_rule_mining_matches_serial(sequences, max_shards):
    db = _database(sequences)
    sharded = SerialBackend(max_shards=max_shards)
    for miner in (mine_all_rules, mine_non_redundant_rules):
        serial = miner(db, min_s_support=2, min_confidence=0.5)
        parallel_path = miner(db, min_s_support=2, min_confidence=0.5, backend=sharded)
        assert serial.rules == parallel_path.rules


@given(sequences=sequences_strategy, max_shards=st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_sharded_search_counters_match_serial(sequences, max_shards):
    """Sharding only reorders the search; it must visit and prune the same nodes."""
    db = _database(sequences)
    serial = mine_closed_patterns(db, min_support=2)
    sharded = mine_closed_patterns(db, min_support=2, backend=SerialBackend(max_shards=max_shards))
    for counter in ("visited", "emitted", "pruned_support", "pruned_closure"):
        assert getattr(serial.stats, counter) == getattr(sharded.stats, counter)


# --------------------------------------------------------------------- #
# Real process pool: fewer examples (each one forks worker processes).
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy)
@settings(max_examples=5, deadline=None)
def test_process_pool_pattern_mining_matches_serial(sequences):
    db = _database(sequences)
    pool = ProcessPoolBackend(workers=2)
    serial = mine_closed_patterns(db, min_support=2)
    parallel = mine_closed_patterns(db, min_support=2, backend=pool)
    assert serial.patterns == parallel.patterns


@given(sequences=sequences_strategy)
@settings(max_examples=5, deadline=None)
def test_process_pool_rule_mining_matches_serial(sequences):
    db = _database(sequences)
    pool = ProcessPoolBackend(workers=2)
    serial = mine_non_redundant_rules(db, min_s_support=1, min_confidence=0.5)
    parallel = mine_non_redundant_rules(db, min_s_support=1, min_confidence=0.5, backend=pool)
    assert serial.rules == parallel.rules


# --------------------------------------------------------------------- #
# Deterministic fixture-based checks (always run, no randomness).
# --------------------------------------------------------------------- #
def test_process_pool_parity_on_lock_database(lock_database):
    pool = ProcessPoolBackend(workers=2)
    serial_patterns = mine_closed_patterns(lock_database, min_support=2)
    pooled_patterns = mine_closed_patterns(lock_database, min_support=2, backend=pool)
    assert serial_patterns.patterns == pooled_patterns.patterns
    assert serial_patterns.patterns  # non-vacuous

    serial_rules = mine_non_redundant_rules(lock_database, min_s_support=2, min_confidence=0.5)
    pooled_rules = mine_non_redundant_rules(
        lock_database, min_s_support=2, min_confidence=0.5, backend=pool
    )
    assert serial_rules.rules == pooled_rules.rules
    assert serial_rules.rules  # non-vacuous


def test_instances_survive_the_parallel_path(abc_database):
    pool = ProcessPoolBackend(workers=2)
    serial = mine_closed_patterns(abc_database, min_support=2, collect_instances=True)
    parallel = mine_closed_patterns(abc_database, min_support=2, collect_instances=True, backend=pool)
    for left, right in zip(serial.patterns, parallel.patterns):
        assert left.instances == right.instances
        assert left.instances


def test_allowed_premise_events_cross_the_process_boundary(lock_database):
    pool = ProcessPoolBackend(workers=2)
    kwargs = dict(
        min_s_support=2,
        min_confidence=0.5,
        allowed_premise_events=frozenset({"lock"}),
    )
    serial = mine_non_redundant_rules(lock_database, **kwargs)
    parallel = mine_non_redundant_rules(lock_database, backend=pool, **kwargs)
    assert serial.rules == parallel.rules
    assert all(set(rule.premise) == {"lock"} for rule in serial.rules)


def test_repeated_parallel_runs_are_deterministic(abc_database):
    pool = ProcessPoolBackend(workers=2)
    runs = [
        mine_closed_patterns(abc_database, min_support=2, backend=pool).patterns
        for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]
