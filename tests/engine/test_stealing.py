"""Work-stealing backend: bit-identical output under every split policy.

The stealing engine's contract extends the shard engine's: not only must
the backend be invisible in the output, it must stay invisible under
*dynamic subtree splitting* — any frontier node may be carved off as a
stolen unit, closure checks and consequent growth may be offloaded to
other workers, and the merged result must still match the serial reference
bit for bit, core search counters included.

``eager_split`` forces every split and offload decision to yes, so the
in-process runs below exercise the splitting, replay and deferred-verdict
machinery deterministically on every hypothesis example; a handful of
tests also cross real process boundaries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.sequence import SequenceDatabase
from repro.engine import WorkStealingBackend, resolve_backend
from repro.patterns.closed_miner import mine_closed_patterns
from repro.patterns.full_miner import mine_frequent_patterns
from repro.rules.full_miner import mine_all_rules
from repro.rules.nonredundant_miner import mine_non_redundant_rules

sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4).map(str), min_size=1, max_size=14),
    min_size=1,
    max_size=5,
)

#: Core counters that must not depend on how the search was carved up.
CORE_COUNTERS = ("visited", "emitted", "pruned_support", "pruned_closure")


def _eager(split_depth=4):
    return WorkStealingBackend(workers=1, eager_split=True, split_depth=split_depth)


@pytest.fixture(scope="module")
def skewed_database() -> SequenceDatabase:
    """A deterministic skewed-alphabet workload: one hot root owns the tree.

    Event ``h`` repeats densely through every trace (a deep, heavy
    subtree), while the remaining events are sparse one-off roots — the
    shape that defeats static LPT planning, because the plan cannot split
    the single hot root's subtree.
    """
    sequences = []
    for shift in range(6):
        events = []
        for repeat in range(10):
            events.append("h")
            events.append(f"a{(repeat + shift) % 3}")
            events.append("h")
            events.append(f"b{(repeat + 2 * shift) % 4}")
        sequences.append(events)
    return SequenceDatabase.from_sequences(sequences)


# --------------------------------------------------------------------- #
# Eager in-process stealing: every example splits and offloads maximally.
# --------------------------------------------------------------------- #
@given(sequences=sequences_strategy, split_depth=st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_stealing_pattern_mining_matches_serial(sequences, split_depth):
    db = SequenceDatabase.from_sequences(sequences)
    backend = _eager(split_depth)
    for miner in (mine_closed_patterns, mine_frequent_patterns):
        serial = miner(db, min_support=2, collect_instances=True)
        stolen = miner(db, min_support=2, collect_instances=True, backend=backend)
        assert serial.patterns == stolen.patterns
        assert serial.min_support == stolen.min_support


@given(sequences=sequences_strategy, split_depth=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_stealing_rule_mining_matches_serial(sequences, split_depth):
    db = SequenceDatabase.from_sequences(sequences)
    backend = _eager(split_depth)
    for miner in (mine_all_rules, mine_non_redundant_rules):
        serial = miner(db, min_s_support=2, min_confidence=0.5)
        stolen = miner(db, min_s_support=2, min_confidence=0.5, backend=backend)
        assert serial.rules == stolen.rules


@given(sequences=sequences_strategy)
@settings(max_examples=40, deadline=None)
def test_stealing_search_counters_match_serial(sequences):
    """Splitting and offloading reorder the search without changing it."""
    db = SequenceDatabase.from_sequences(sequences)
    serial = mine_closed_patterns(db, min_support=2)
    stolen = mine_closed_patterns(db, min_support=2, backend=_eager())
    for counter in CORE_COUNTERS:
        assert getattr(serial.stats, counter) == getattr(stolen.stats, counter)


def test_split_depth_bounds_subtree_splitting(skewed_database):
    """With split_depth=1 no frontier is ever eligible (children sit at depth 2)."""
    shallow = _eager(split_depth=1)
    deep = _eager(split_depth=6)
    serial = mine_closed_patterns(skewed_database, min_support=4)
    capped = mine_closed_patterns(skewed_database, min_support=4, backend=shallow)
    split = mine_closed_patterns(skewed_database, min_support=4, backend=deep)
    assert capped.patterns == serial.patterns
    assert split.patterns == serial.patterns
    assert "units_split" not in capped.stats.extra
    assert split.stats.extra.get("units_split", 0) > 0


def test_closure_offload_produces_verify_units(skewed_database):
    """Eager stealing routes closure checks through verify units."""
    stolen = mine_closed_patterns(skewed_database, min_support=4, backend=_eager())
    assert stolen.stats.extra.get("closure_offloads", 0) > 0


#: Rule-mining thresholds for the skewed fixture: the dense hot event makes
#: uncapped consequent growth combinatorial, so the rule tests cap lengths.
SKEWED_RULE_KWARGS = dict(
    min_s_support=6, min_confidence=0.9, max_premise_length=2, max_consequent_length=2
)


def test_consequent_offload_rides_the_unit_queue(skewed_database):
    serial = mine_non_redundant_rules(skewed_database, **SKEWED_RULE_KWARGS)
    stolen = mine_non_redundant_rules(
        skewed_database, backend=_eager(), **SKEWED_RULE_KWARGS
    )
    assert serial.rules == stolen.rules
    assert serial.rules  # non-vacuous
    assert stolen.stats.extra.get("consequent_offloads", 0) > 0


def test_instances_survive_the_stealing_path(skewed_database):
    serial = mine_closed_patterns(skewed_database, min_support=4, collect_instances=True)
    stolen = mine_closed_patterns(
        skewed_database, min_support=4, collect_instances=True, backend=_eager()
    )
    for left, right in zip(serial.patterns, stolen.patterns):
        assert left.instances == right.instances
    assert any(pattern.instances for pattern in serial.patterns)


# --------------------------------------------------------------------- #
# Real worker processes: fewer runs (each forks a pool).
# --------------------------------------------------------------------- #
def test_process_stealing_parity_on_skewed_database(skewed_database):
    backend = WorkStealingBackend(workers=2, eager_split=True, split_depth=4)
    serial_patterns = mine_closed_patterns(skewed_database, min_support=4)
    stolen_patterns = mine_closed_patterns(skewed_database, min_support=4, backend=backend)
    assert serial_patterns.patterns == stolen_patterns.patterns
    assert serial_patterns.patterns  # non-vacuous

    serial_rules = mine_non_redundant_rules(skewed_database, **SKEWED_RULE_KWARGS)
    stolen_rules = mine_non_redundant_rules(
        skewed_database, backend=backend, **SKEWED_RULE_KWARGS
    )
    assert serial_rules.rules == stolen_rules.rules
    assert serial_rules.rules  # non-vacuous


def test_repeated_process_stealing_runs_are_deterministic(skewed_database):
    backend = WorkStealingBackend(workers=2, eager_split=True, split_depth=4)
    runs = [
        mine_closed_patterns(skewed_database, min_support=4, backend=backend).patterns
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


# --------------------------------------------------------------------- #
# Configuration surface.
# --------------------------------------------------------------------- #
class TestResolveStealingBackend:
    def test_resolve_by_name(self):
        backend = resolve_backend("stealing", workers=4, split_depth=5)
        assert isinstance(backend, WorkStealingBackend)
        assert backend.workers == 4
        assert backend.split_depth == 5
        assert "stealing" in backend.describe()

    def test_split_depth_defaults(self):
        backend = resolve_backend("stealing", workers=2)
        assert backend.split_depth >= 1

    def test_split_depth_rejected_for_other_backends(self):
        for name in ("serial", "process", "auto"):
            with pytest.raises(ConfigurationError):
                resolve_backend(name, workers=2, split_depth=4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkStealingBackend(workers=0)
        with pytest.raises(ConfigurationError):
            WorkStealingBackend(split_depth=0)
        with pytest.raises(ConfigurationError):
            WorkStealingBackend(check_interval=0)
