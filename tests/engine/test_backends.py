"""Unit tests for the execution backends and the deterministic shard plan/merge."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.stats import MiningStats
from repro.engine import (
    ProcessPoolBackend,
    RootResult,
    SerialBackend,
    Shard,
    ShardOutcome,
    merge_outcomes,
    plan_shards,
    resolve_backend,
)


class TestPlanShards:
    def test_empty_roots_yield_no_shards(self):
        assert plan_shards([], 4) == []

    def test_single_shard_holds_all_roots_sorted(self):
        shards = plan_shards([(3, 10), (1, 5), (2, 1)], 1)
        assert shards == [Shard(0, (1, 2, 3))]

    def test_every_root_assigned_exactly_once(self):
        roots = [(event, (event * 7) % 13 + 1) for event in range(50)]
        shards = plan_shards(roots, 8)
        assigned = [event for shard in shards for event in shard.roots]
        assert sorted(assigned) == [event for event, _ in roots]

    def test_never_more_shards_than_roots(self):
        shards = plan_shards([(0, 1), (1, 1)], 16)
        assert len(shards) <= 2

    def test_deterministic_for_same_input(self):
        roots = [(event, (event * 31) % 7 + 1) for event in range(40)]
        assert plan_shards(roots, 6) == plan_shards(list(roots), 6)

    def test_heavy_roots_spread_across_shards(self):
        # Two heavy roots must not share a shard when two shards exist.
        shards = plan_shards([(0, 100), (1, 100), (2, 1), (3, 1)], 2)
        heavy_homes = {shard.index for shard in shards for root in shard.roots if root in (0, 1)}
        assert len(heavy_homes) == 2


class TestMergeOutcomes:
    def _outcome(self, shard_index, roots, visited=0):
        stats = MiningStats()
        stats.visited = visited
        return ShardOutcome(
            shard_index,
            tuple(RootResult(root, tuple(f"r{root}.{i}" for i in range(2))) for root in roots),
            stats,
        )

    def test_records_ordered_by_root_regardless_of_shard_order(self):
        outcomes = [self._outcome(1, [3, 5]), self._outcome(0, [0, 4]), self._outcome(2, [1])]
        records, _ = merge_outcomes(outcomes)
        assert records == [
            "r0.0", "r0.1", "r1.0", "r1.1", "r3.0", "r3.1", "r4.0", "r4.1", "r5.0", "r5.1",
        ]
        # Order must not depend on completion order either.
        shuffled, _ = merge_outcomes(list(reversed(outcomes)))
        assert shuffled == records

    def test_stats_counters_are_summed(self):
        _, stats = merge_outcomes([self._outcome(0, [0], visited=3), self._outcome(1, [1], visited=4)])
        assert stats.visited == 7


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend("auto"), SerialBackend)
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)

    def test_auto_with_workers_is_process(self):
        backend = resolve_backend(None, workers=4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 4

    def test_explicit_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process", workers=2), ProcessPoolBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("threads")

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ConfigurationError):
            SerialBackend(max_shards=0)

    def test_shard_counts(self):
        assert SerialBackend().shard_count(10) == 1
        assert SerialBackend(max_shards=4).shard_count(10) == 4
        pool = ProcessPoolBackend(workers=2, oversubscription=4)
        assert pool.shard_count(100) == 8
        assert pool.shard_count(3) == 3
