"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.sequence import SequenceDatabase
from repro.jboss.workloads import (
    SecurityWorkloadConfig,
    TransactionWorkloadConfig,
    generate_security_traces,
    generate_transaction_traces,
)


@pytest.fixture
def lock_database() -> SequenceDatabase:
    """The running lock/unlock example used throughout the paper's introduction."""
    return SequenceDatabase.from_sequences(
        [
            ["lock", "use", "unlock", "lock", "unlock"],
            ["lock", "read", "unlock"],
            ["lock", "write", "flush", "unlock", "lock", "use", "unlock"],
        ]
    )


@pytest.fixture
def abc_database() -> SequenceDatabase:
    """A tiny hand-checkable database over the alphabet {a, b, c, d}."""
    return SequenceDatabase.from_sequences(
        [
            ["a", "b", "c", "a", "b", "c"],
            ["a", "x", "b", "c", "d"],
            ["b", "a", "c", "b"],
        ]
    )


@pytest.fixture(scope="session")
def small_transaction_traces() -> SequenceDatabase:
    """A small deterministic JBoss transaction workload (session-scoped: reused)."""
    config = TransactionWorkloadConfig(
        num_traces=8,
        min_transactions_per_trace=1,
        max_transactions_per_trace=1,
        rollback_probability=0.25,
        seed=7,
    )
    return generate_transaction_traces(config)


@pytest.fixture(scope="session")
def small_security_traces() -> SequenceDatabase:
    """A small deterministic JBoss security workload (session-scoped: reused)."""
    config = SecurityWorkloadConfig(num_traces=12, seed=13)
    return generate_security_traces(config)
