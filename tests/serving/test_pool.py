"""Monitor-pool tests: parity with a single monitor, backpressure, hot swap."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import MonitoringError
from repro.serving.compile import compile_rules
from repro.serving.pool import ACCEPTED, BUSY, MonitorPool
from repro.serving.stream_monitor import StreamingMonitor
from repro.rules.rule import RecurrentRule

RULES_A = [
    RecurrentRule(premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0),
    RecurrentRule(premise=("lock",), consequent=("unlock", "close"), s_support=2, i_support=2, confidence=1.0),
]
RULES_B = [
    RecurrentRule(premise=("open", "use"), consequent=("close",), s_support=2, i_support=2, confidence=1.0),
]
ALPHABET = ["open", "use", "lock", "unlock", "close", "idle"]


def report_bytes(report):
    """Canonical byte serialisation of a report, for byte-identity checks."""
    payload = {
        "total": report.total_points,
        "satisfied": report.satisfied_points,
        "violations": [v.as_dict() for v in report.violations],
        "per_rule": sorted(
            (repr(key), count) for key, count in report.per_rule_points.items()
        ),
    }
    return json.dumps(payload, sort_keys=True).encode()


def reference_report(sessions, rules_of_session):
    """What one sequential monitor per session, merged in admission order, says.

    ``sessions`` is an ordered mapping session_id -> list of events (order =
    admission order); ``rules_of_session`` maps session_id to the rule list
    that was live when the session was admitted.
    """
    reports = []
    for index, (session_id, events) in enumerate(sessions.items()):
        monitor = StreamingMonitor(
            compile_rules(rules_of_session[session_id]), first_trace_index=index
        )
        monitor.begin_trace(name=session_id)
        for event in events:
            monitor.feed(event)
        reports.append(monitor.end_trace())
    from repro.verification.violations import MonitoringReport

    return MonitoringReport.merge_all(reports)


# --------------------------------------------------------------------------- #
# Property: pool == single monitor, under arbitrary session interleavings
# --------------------------------------------------------------------------- #
stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.sampled_from(ALPHABET)),
    max_size=60,
)


@given(stream=stream_strategy, shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_pool_report_matches_single_monitor(stream, shards):
    """The merged pool report is byte-identical to one monitor fed the same
    sessions sequentially in admission order, for any interleaving."""
    with MonitorPool(RULES_A, shards=shards, queue_depth=256) as pool:
        sessions = {}
        for slot, event in stream:
            session_id = f"s{slot}"
            assert pool.feed(session_id, event) == ACCEPTED
            sessions.setdefault(session_id, []).append(event)
        tickets = [pool.end_session(sid) for sid in sessions]
        for ticket in tickets:
            assert ticket is not None
            ticket.wait(timeout=10.0)
        pooled = pool.report()
    expected = reference_report(sessions, {sid: RULES_A for sid in sessions})
    assert report_bytes(pooled) == report_bytes(expected)


@given(stream=stream_strategy, swap_at=st.integers(min_value=0, max_value=60))
@settings(max_examples=40, deadline=None)
def test_pool_parity_across_mid_stream_hot_swap(stream, swap_at):
    """Sessions admitted before a swap finish on their generation; sessions
    admitted after use the new rules — and the merged report still matches
    the per-generation sequential reference byte for byte."""
    with MonitorPool(RULES_A, shards=3, queue_depth=256) as pool:
        sessions = {}
        rules_of_session = {}
        live = RULES_A
        for position, (slot, event) in enumerate(stream):
            if position == swap_at:
                assert pool.swap(RULES_B) == pool.generation
                live = RULES_B
            session_id = f"s{slot}"
            assert pool.feed(session_id, event) == ACCEPTED
            sessions.setdefault(session_id, []).append(event)
            rules_of_session.setdefault(session_id, live)
        tickets = [pool.end_session(sid) for sid in sessions]
        for ticket in tickets:
            ticket.wait(timeout=10.0)
        pooled = pool.report()
    expected = reference_report(sessions, rules_of_session)
    assert report_bytes(pooled) == report_bytes(expected)


# --------------------------------------------------------------------------- #
# Backpressure
# --------------------------------------------------------------------------- #
def test_stalled_shard_answers_busy_instead_of_growing():
    """A stalled shard fills its bounded queue and rejects with BUSY; memory
    is bounded by queue_depth, not by offered load."""
    with MonitorPool(RULES_A, shards=1, queue_depth=4) as pool:
        pool.pause_shard(0)
        accepted = 0
        outcomes = []
        for n in range(50):
            outcome = pool.feed("stalled", f"e{n}")
            outcomes.append(outcome)
            if outcome == ACCEPTED:
                accepted += 1
        # The queue holds queue_depth items plus at most one in the worker's
        # hand; everything beyond that is refused, not buffered.
        assert accepted <= 4 + 1
        assert outcomes[-1] == BUSY
        assert pool.stats()["busy_rejections"] == 50 - accepted
        # Ending the session is refused too while the queue is full.
        assert pool.end_session("stalled") is None
        assert pool.active_sessions == 1

        pool.resume_shard(0)
        assert pool.drain(timeout=10.0)
        ticket = pool.end_session("stalled")
        report = ticket.wait(timeout=10.0)
        # Exactly the accepted events were monitored — BUSY batches left
        # no partial residue.
        assert pool.stats()["events_processed"] == accepted


def test_busy_batch_is_atomic_and_retry_does_not_duplicate():
    """A rejected batch leaves nothing behind; retrying it after the stall
    clears yields the same report as an unstalled run."""
    events = ["open", "use", "close"]
    with MonitorPool(RULES_A, shards=1, queue_depth=1) as pool:
        assert pool.feed_batch("s", ["open"]) == ACCEPTED
        pool.pause_shard(0)
        # Fill the queue (worker holds one item after the pause gate).
        while pool.feed_batch("s", ["idle"]) == ACCEPTED:
            pass
        assert pool.feed_batch("s", events) == BUSY  # rejected whole
        pool.resume_shard(0)
        assert pool.drain(timeout=10.0)
        assert pool.feed_batch("s", events) == ACCEPTED  # retried whole
        ticket = pool.end_session("s")
        while ticket is None:  # queue_depth=1: END may race the batch
            assert pool.drain(timeout=10.0)
            ticket = pool.end_session("s")
        report = ticket.wait(timeout=10.0)
    # The session saw exactly two "open"s (the seed and one from the retried
    # batch): two open->close temporal points, both satisfied.  Had the
    # rejected batch partially landed, the retry would duplicate events and
    # raise the point count.
    assert report.per_rule_points[(("open",), ("close",))] == 2
    assert report.violation_count == 0
    assert report.satisfied_points == report.total_points


# --------------------------------------------------------------------------- #
# Sessions, routing, lifecycle
# --------------------------------------------------------------------------- #
def test_routing_is_stable_and_spreads_sessions():
    with MonitorPool(RULES_A, shards=4, queue_depth=16) as pool:
        ids = [f"session-{n}" for n in range(200)]
        first = [pool.route(sid) for sid in ids]
        assert first == [pool.route(sid) for sid in ids]  # deterministic
        assert set(first) == {0, 1, 2, 3}  # all shards participate


def test_session_id_may_be_reused_after_end():
    with MonitorPool(RULES_A, shards=2, queue_depth=16) as pool:
        pool.feed("s", "open")
        pool.end_session("s").wait(timeout=10.0)
        assert pool.feed("s", "open") == ACCEPTED  # a fresh session
        pool.end_session("s").wait(timeout=10.0)
        report = pool.report()
        # Two distinct sessions, two dangling opens.
        assert report.total_points == 2
        assert report.violation_count == 2
        assert pool.stats()["sessions_closed"] == 2


def test_session_lifecycle_errors():
    with MonitorPool(RULES_A, shards=1, queue_depth=16) as pool:
        with pytest.raises(MonitoringError):
            pool.end_session("never-seen")
        pool.feed("s", "open")
        pool.end_session("s")
        with pytest.raises(MonitoringError):
            pool.end_session("s")  # already closed: id unknown again
    with pytest.raises(MonitoringError):
        pool.feed("t", "open")  # pool closed
    with pytest.raises(MonitoringError):
        pool.end_session("t")  # pool closed


def test_zero_event_session_reports_zero_points():
    with MonitorPool(RULES_A, shards=1, queue_depth=16) as pool:
        assert pool.feed_batch("empty", []) == ACCEPTED
        report = pool.end_session("empty").wait(timeout=10.0)
        assert report.total_points == 0
        assert report.violation_count == 0
        # Parity: the reference zero-length trace also tallies every rule
        # at zero points.
        expected = reference_report({"empty": []}, {"empty": RULES_A})
        assert report_bytes(pool.report()) == report_bytes(expected)


def test_swap_bumps_generation_and_serves_new_sessions_new_rules():
    with MonitorPool(RULES_A, shards=2, queue_depth=16) as pool:
        assert pool.generation == 0
        pool.feed("old", "open")          # admitted at generation 0
        generation = pool.swap(RULES_B)
        assert generation == pool.generation == 1
        assert [r.premise for r in pool.compiled.rules] == [("open", "use")]
        pool.feed("new", "open")          # admitted at generation 1
        old = pool.end_session("old").wait(timeout=10.0)
        new = pool.end_session("new").wait(timeout=10.0)
        # RULES_A fires on a lone open; RULES_B needs open,use — so the
        # old session (old rules) violates, the new one is clean.
        assert old.violation_count == 1
        assert new.violation_count == 0
        assert pool.stats()["generation"] == 1


def test_stats_shape():
    with MonitorPool(RULES_A, shards=2, queue_depth=8) as pool:
        pool.feed_batch("s", ["open", "close"])
        pool.end_session("s").wait(timeout=10.0)
        stats = pool.stats()
        assert stats["shards"] == 2
        assert stats["queue_depth"] == 8
        assert stats["rules"] == len(RULES_A)
        assert stats["sessions_opened"] == 1
        assert stats["sessions_closed"] == 1
        assert stats["sessions_active"] == 0
        assert stats["events_processed"] == 2
        assert len(stats["per_shard"]) == 2
        assert json.loads(json.dumps(stats)) == stats  # log-shippable
