"""Streaming-monitor parity and incremental-API tests.

The serving contract: a :class:`StreamingMonitor` over a compiled automaton
produces *identical* monitoring reports — point counts, per-rule tallies
and the exact violation list — to the offline
:class:`~repro.verification.monitor.RuleMonitor`, which re-derives temporal
points per rule per trace, and satisfiability agrees with the LTL
translation of Table 2.  The hypothesis suites drive randomized rule sets
and databases through all three views.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import MonitoringError
from repro.core.sequence import SequenceDatabase
from repro.ltl.semantics import holds
from repro.ltl.translate import rule_to_ltl
from repro.rules.nonredundant_miner import mine_non_redundant_rules
from repro.rules.rule import RecurrentRule
from repro.serving import StreamingMonitor, compile_rules, monitor_stream
from repro.verification.monitor import RuleMonitor

ALPHABET = [str(i) for i in range(5)]

event_strategy = st.sampled_from(ALPHABET)
pattern_strategy = st.lists(event_strategy, min_size=1, max_size=3).map(tuple)
rule_strategy = st.builds(
    lambda premise, consequent: RecurrentRule(
        premise=premise, consequent=consequent, s_support=1, i_support=1, confidence=1.0
    ),
    premise=pattern_strategy,
    consequent=pattern_strategy,
)
rules_strategy = st.lists(rule_strategy, min_size=0, max_size=5)
trace_strategy = st.lists(event_strategy, min_size=0, max_size=14)
database_strategy = st.lists(trace_strategy, min_size=0, max_size=5)


def _assert_reports_identical(offline, streaming):
    assert streaming.total_points == offline.total_points
    assert streaming.satisfied_points == offline.satisfied_points
    assert streaming.per_rule_points == offline.per_rule_points
    assert streaming.violations == offline.violations


# --------------------------------------------------------------------- #
# Parity with the temporal-points (offline) semantics.
# --------------------------------------------------------------------- #
@given(rules=rules_strategy, traces=database_strategy)
@settings(max_examples=300, deadline=None)
def test_streaming_report_identical_to_offline_monitor(rules, traces):
    database = SequenceDatabase.from_sequences(traces)
    offline = RuleMonitor(rules).check_database(database)
    streaming = StreamingMonitor(compile_rules(rules)).check_database(database)
    _assert_reports_identical(offline, streaming)


@given(rules=rules_strategy, traces=database_strategy)
@settings(max_examples=100, deadline=None)
def test_cumulative_report_matches_offline_database_check(rules, traces):
    database = SequenceDatabase.from_sequences(traces)
    monitor = StreamingMonitor(compile_rules(rules))
    for index in range(len(database)):
        monitor.check_trace(database[index], name=database.name(index))
    _assert_reports_identical(RuleMonitor(rules).check_database(database), monitor.report())


@given(rule=rule_strategy, trace=trace_strategy)
@settings(max_examples=200, deadline=None)
def test_event_at_a_time_feeding_matches_whole_trace_check(rule, trace):
    by_event = StreamingMonitor(compile_rules([rule]))
    by_event.begin_trace()
    for event in trace:
        by_event.feed(event)
    _assert_reports_identical(RuleMonitor([rule]).check_trace(trace), by_event.end_trace())


# --------------------------------------------------------------------- #
# Parity with the LTL semantics (Table 2 translation).
# --------------------------------------------------------------------- #
@given(rule=rule_strategy, trace=st.lists(event_strategy, min_size=0, max_size=10))
@settings(max_examples=200, deadline=None)
def test_streaming_satisfaction_agrees_with_ltl(rule, trace):
    formula = rule_to_ltl(rule.premise, rule.consequent)
    report = StreamingMonitor(compile_rules([rule])).check_trace(trace)
    assert (report.violation_count == 0) == holds(formula, trace)


# --------------------------------------------------------------------- #
# Mined rules compile and serve: the mine -> compile -> monitor loop.
# --------------------------------------------------------------------- #
@given(traces=st.lists(trace_strategy, min_size=1, max_size=5), probe=database_strategy)
@settings(max_examples=50, deadline=None)
def test_mined_rules_compile_and_match_offline_monitoring(traces, probe):
    mined = mine_non_redundant_rules(
        SequenceDatabase.from_sequences(traces), min_s_support=1, min_confidence=0.5
    ).rules
    database = SequenceDatabase.from_sequences(probe)
    _assert_reports_identical(
        RuleMonitor(mined).check_database(database),
        monitor_stream(database, mined),
    )


# --------------------------------------------------------------------- #
# Incremental API behaviour.
# --------------------------------------------------------------------- #
def _rule(premise, consequent):
    return RecurrentRule(
        premise=tuple(premise), consequent=tuple(consequent),
        s_support=1, i_support=1, confidence=1.0,
    )


def test_violations_carry_trace_names_and_global_indexes():
    monitor = StreamingMonitor([_rule(["lock"], ["unlock"])], first_trace_index=41)
    monitor.check_trace(["lock", "unlock"], name="good")
    report = monitor.check_trace(["lock", "work"], name="bad")
    (violation,) = report.violations
    assert violation.trace_index == 42
    assert violation.trace_name == "bad"
    assert violation.position == 0
    assert "bad@0" in violation.describe()


def test_end_trace_without_an_open_trace_raises():
    monitor = StreamingMonitor([_rule(["a"], ["b"])])
    with pytest.raises(MonitoringError, match="no trace is open"):
        monitor.end_trace()


def test_begin_trace_twice_raises():
    monitor = StreamingMonitor([_rule(["a"], ["b"])])
    monitor.begin_trace()
    with pytest.raises(MonitoringError, match="already open"):
        monitor.begin_trace()


def test_report_only_covers_ended_traces():
    monitor = StreamingMonitor([_rule(["a"], ["b"])])
    monitor.feed("a")  # auto-opens a trace; premise completes, no consequent yet
    assert monitor.report().total_points == 0
    monitor.end_trace()
    assert monitor.report().total_points == 1
    assert monitor.report().violation_count == 1


def test_events_outside_every_rule_are_skipped_but_positions_advance():
    monitor = StreamingMonitor([_rule(["a"], ["b"])])
    report = monitor.check_trace(["noise", "a", "noise", "noise"])
    (violation,) = report.violations
    assert violation.position == 1  # positions count unknown events too


def test_empty_rule_set_serves_cleanly():
    monitor = StreamingMonitor(())
    report = monitor.check_trace(["a", "b", "c"])
    assert report.total_points == 0
    assert report.violation_count == 0
    assert monitor.report().satisfaction_rate == 1.0


def test_monitor_counters_track_traffic():
    monitor = StreamingMonitor([_rule(["a"], ["b"])])
    monitor.check_trace(["a", "b"])
    monitor.check_trace(["c"])
    assert monitor.traces_seen == 2
    assert monitor.events_seen == 3


def test_one_compiled_set_serves_concurrent_sessions_independently():
    compiled = compile_rules([_rule(["a"], ["b"])])
    first = StreamingMonitor(compiled)
    second = StreamingMonitor(compiled)
    first.feed("a")
    assert second.check_trace(["a", "b"]).violation_count == 0
    assert first.end_trace().violation_count == 1
