"""Per-rule serving analytics: wire ANALYTICS verb, trace propagation
through the server into pool spans, and `repro top` rendering."""

import pytest

from repro.obs import tracing
from repro.obs.metrics import REGISTRY, RULE_POINTS_TOTAL, set_enabled
from repro.rules.rule import RecurrentRule
from repro.serving.pool import MonitorPool
from repro.serving.server import EventPushServer, PushClient
from repro.serving.stream_monitor import StreamingMonitor

RULES = [
    RecurrentRule(
        premise=("open",), consequent=("use", "close"), s_support=2, i_support=2,
        confidence=1.0,
    ),
    RecurrentRule(
        premise=("lock",), consequent=("unlock",), s_support=2, i_support=2,
        confidence=1.0,
    ),
]


@pytest.fixture
def served():
    with MonitorPool(RULES, shards=2, queue_depth=64) as pool:
        server = EventPushServer(pool, port=0)
        server.start()
        try:
            yield server, pool
        finally:
            server.close()


@pytest.fixture
def client(served):
    server, _ = served
    host, port = server.address
    with PushClient(host, port) as push_client:
        yield push_client


@pytest.fixture(autouse=True)
def disarm_tracing():
    tracing.reset()
    yield
    tracing.reset()


def _drive(client):
    """Two sessions: one satisfies both rules, one violates both."""
    client.feed_batch("good", ["open", "use", "close", "lock", "unlock"])
    client.end("good")
    client.feed_batch("bad", ["open", "lock"])
    client.end("bad")


class TestMonitorAnalytics:
    def test_counts_match_outcomes(self):
        monitor = StreamingMonitor(RULES)
        monitor.begin_trace(name="t")
        for event in ["open", "use", "close", "open", "lock"]:
            monitor.feed(event)
        monitor.end_trace()
        analytics = monitor.rule_analytics()
        open_rule = analytics["open -> use, close"]
        assert open_rule["opened"] == 2
        assert open_rule["satisfied"] == 1
        assert open_rule["violated"] == 1
        # A trie node activates at most once per trace: one arming even
        # though the premise occurred twice.
        assert open_rule["trie_advances"] == 1
        lock_rule = analytics["lock -> unlock"]
        assert lock_rule == {
            "opened": 1, "satisfied": 0, "violated": 1, "trie_advances": 1,
        }

    def test_report_bytes_unchanged_by_analytics(self):
        """The analytics hooks must not perturb the violation report."""
        baseline = StreamingMonitor(RULES)
        events = ["open", "use", "lock", "open", "use", "close"]
        baseline.check_trace(events, name="t")
        again = StreamingMonitor(RULES)
        again.check_trace(events, name="t")
        again.rule_analytics()
        first, second = baseline.report(), again.report()
        assert first.summary() == second.summary()
        assert [v.as_dict() for v in first.violations] == [
            v.as_dict() for v in second.violations
        ]


class TestAnalyticsVerb:
    def test_analytics_over_the_wire(self, client, served):
        _, pool = served
        _drive(client)
        reply = client.analytics()
        assert reply["op"] == "ANALYTICS"
        assert reply["generation"] == pool.generation == 0
        open_rule = reply["rules"]["open -> use, close"]
        assert open_rule["opened"] == 2
        assert open_rule["satisfied"] == 1
        assert open_rule["violated"] == 1
        assert reply["rules"]["lock -> unlock"]["violated"] == 1

    def test_top_limits_and_ranks(self, client):
        _drive(client)
        # Extra violations for the lock rule so it outranks the other.
        client.feed_batch("worse", ["lock", "lock", "lock"])
        client.end("worse")
        reply = client.analytics(top=1)
        assert list(reply["rules"]) == ["lock -> unlock"]
        everything = client.analytics()
        assert len(everything["rules"]) == 2

    def test_pool_merge_is_per_rule_across_shards(self, served):
        """Sessions hash to different shards; analytics still sum per rule."""
        _, pool = served
        for index in range(8):
            session = f"s{index}"
            pool.feed_batch(session, ["open"])
            pool.end_session(session).wait(timeout=10)
        merged = pool.rule_analytics()
        assert merged["open -> use, close"]["opened"] == 8
        assert merged["open -> use, close"]["violated"] == 8

    def test_registry_mirror_when_enabled(self, client):
        REGISTRY.reset()
        set_enabled(True)
        try:
            _drive(client)
        finally:
            set_enabled(True)
        assert RULE_POINTS_TOTAL.value(
            rule="open -> use, close", outcome="opened"
        ) == 2
        assert RULE_POINTS_TOTAL.value(
            rule="lock -> unlock", outcome="violated"
        ) == 1


class TestTracePropagation:
    def test_one_trace_threads_client_server_shard(self, served):
        server, _ = served
        host, port = server.address
        collector = tracing.install()
        with PushClient(host, port) as push_client:
            with tracing.span("client.push") as root:
                push_client.feed_batch("s", ["open", "use", "close"])
                push_client.end("s")
        entries = collector.snapshot()
        names = {entry["name"] for entry in entries}
        assert {"client.push", "server.request", "pool.batch", "pool.close"} <= names
        trace_ids = {entry["trace"] for entry in entries}
        assert len(trace_ids) == 1  # one trace covers all tiers
        requests = [e for e in entries if e["name"] == "server.request"]
        client_span = next(e for e in entries if e["name"] == "client.push")
        assert all(e["parent"] == client_span["span"] for e in requests)
        batch = next(e for e in entries if e["name"] == "pool.batch")
        assert batch["parent"] in {e["span"] for e in requests}

    def test_untraced_frames_stay_plain(self, served):
        server, _ = served
        host, port = server.address
        with PushClient(host, port) as push_client:
            push_client.send({"op": "PING"})
            sent = push_client._unanswered[-1]
            assert "trace" not in sent  # disarmed: no stamping
            assert push_client.read()["op"] == "PONG"


class TestReproTop:
    def test_cli_renders_frames_against_live_server(self, served, client, capsys):
        from repro.cli import main

        _drive(client)
        server, _ = served
        host, port = server.address
        code = main(
            [
                "top",
                "--host", host,
                "--port", str(port),
                "--iterations", "2",
                "--interval", "0.01",
                "--top", "5",
                "--no-clear",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top — generation 0" in out
        assert "open -> use, close" in out
        assert "violated" in out
        # Second frame carries sliding-window rates ("…/s").
        assert "/s" in out

    def test_cli_top_reports_connection_failure(self, capsys):
        from repro.cli import main

        assert main(["top", "--host", "127.0.0.1", "--port", "1", "--iterations", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_render_top_is_pure(self):
        from repro.cli import _render_top

        stats = {
            "generation": 1, "rules": 2, "uptime_seconds": 10.0,
            "sessions_active": 1, "sessions_closed": 5, "sessions_lost": 0,
            "events_processed": 100, "busy_rejections": 2,
            "queue_depth": 64,
            "per_shard": [
                {"shard": 0, "queued": 3, "restarts": 0},
                {"shard": 1, "queued": 0, "restarts": 1},
            ],
        }
        previous = dict(stats, events_processed=50, sessions_closed=3)
        analytics = {
            "rules": {
                "a -> b": {
                    "opened": 4, "satisfied": 1, "violated": 3, "trie_advances": 9,
                },
            },
        }
        frame = _render_top(stats, previous, analytics, elapsed=2.0, top_n=5)
        assert "generation 1" in frame
        assert "25.0/s" in frame  # (100 - 50) / 2.0
        assert "1.0/s" in frame  # (5 - 3) / 2.0 sessions
        assert "0:3 1:0" in frame  # queue depths
        assert "a -> b" in frame
        first_frame = _render_top(stats, None, analytics, elapsed=0.0, top_n=5)
        assert "-" in first_frame  # no rates without a previous sample
