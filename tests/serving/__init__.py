"""Test package (required so same-named test modules do not clash)."""
