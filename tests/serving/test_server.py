"""Push-server tests: framing, verbs, sessions over connections, hot swap."""

import io
import socket
import struct

import pytest

from repro.rules.rule import RecurrentRule
from repro.serving.pool import MonitorPool
from repro.serving.server import (
    EventPushServer,
    ProtocolError,
    PushClient,
    encode_frame,
    read_frame,
)
from repro.specs.repository import SpecificationRepository

RULES = [
    RecurrentRule(premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0),
]


def _repository(rules, name="swapped"):
    repository = SpecificationRepository(name=name)
    for rule in rules:
        repository.add_rule(rule)
    return repository


@pytest.fixture
def served():
    with MonitorPool(RULES, shards=2, queue_depth=64) as pool:
        server = EventPushServer(pool, port=0)
        server.start()
        try:
            yield server, pool
        finally:
            server.close()


@pytest.fixture
def client(served):
    server, _ = served
    host, port = server.address
    with PushClient(host, port) as push_client:
        yield push_client


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def test_frame_round_trip():
    payload = {"op": "EVENT", "session": "s", "event": "münchen"}
    stream = io.BytesIO(encode_frame(payload) + encode_frame({"op": "PING"}))
    assert read_frame(stream) == payload
    assert read_frame(stream) == {"op": "PING"}
    assert read_frame(stream) is None  # clean EOF between frames


@pytest.mark.parametrize(
    "raw",
    [
        b"\x00\x00",  # truncated header
        struct.pack(">I", 10) + b"short",  # truncated payload
        struct.pack(">I", 4) + b"\xff\xfe\x00\x01",  # not UTF-8 JSON
        encode_frame({"op": "PING"})[:4] + b"1234",  # JSON but not an object
    ],
)
def test_malformed_frames_raise(raw):
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(raw))


def test_oversized_frame_is_rejected_without_reading_it():
    stream = io.BytesIO(struct.pack(">I", 1 << 30))
    with pytest.raises(ProtocolError, match="exceeds"):
        read_frame(stream, max_frame_bytes=1024)


# --------------------------------------------------------------------------- #
# Verbs over a live socket
# --------------------------------------------------------------------------- #
def test_event_end_round_trip(client):
    assert client.ping() == {"op": "PONG"}
    assert client.feed("s1", "open") == {"op": "OK"}
    assert client.feed_batch("s1", ["use", "close", "open"]) == {"op": "OK"}
    reply = client.end("s1")
    assert reply["op"] == "SESSION" and reply["session"] == "s1"
    assert reply["points"] == 2 and reply["satisfied"] == 1
    (violation,) = reply["violations"]
    assert violation["trace_name"] == "s1"
    assert violation["position"] == 3


def test_verb_errors_keep_the_connection(client):
    assert client.request({"op": "NO-SUCH-VERB"})["op"] == "ERROR"
    assert client.end("never-opened")["op"] == "ERROR"
    assert client.request({"op": "BATCH", "session": "s", "events": "oops"})["op"] == "ERROR"
    assert client.request({"op": "EVENT", "session": "", "event": "x"})["op"] == "ERROR"
    assert client.ping() == {"op": "PONG"}  # still alive after every error


def test_malformed_frame_gets_error_then_close(served):
    server, _ = served
    host, port = server.address
    with socket.create_connection((host, port), timeout=5.0) as sock:
        sock.sendall(struct.pack(">I", 3) + b"{{{")
        stream = sock.makefile("rb")
        reply = read_frame(stream)
        assert reply["op"] == "ERROR"
        assert read_frame(stream) is None  # server hung up on us


def test_stats_and_report(client):
    client.feed_batch("a", ["open", "close"])
    client.feed_batch("b", ["open"])
    client.end("a")
    client.end("b")
    stats = client.stats()
    assert stats["op"] == "STATS"
    assert stats["sessions_closed"] == 2
    assert stats["events_processed"] == 3
    assert stats["uptime_seconds"] >= 0
    report = client.report()
    assert report["op"] == "REPORT"
    assert report["points"] == 2 and report["violation_count"] == 1
    assert client.report(limit=0)["violations"] == []


def test_sessions_span_connections(served):
    """A logical session is keyed by session_id, not by TCP connection."""
    server, _ = served
    host, port = server.address
    with PushClient(host, port) as first, PushClient(host, port) as second:
        assert first.feed("shared", "open") == {"op": "OK"}
        assert second.feed("shared", "close") == {"op": "OK"}
        reply = second.end("shared")
        assert reply["points"] == 1 and reply["satisfied"] == 1


def test_swap_over_the_wire(client, served):
    _, pool = served
    client.feed("old", "open")  # admitted under generation 0
    new_rules = [
        RecurrentRule(
            premise=("open", "use"), consequent=("close",), s_support=2, i_support=2, confidence=1.0
        )
    ]
    reply = client.swap(_repository(new_rules))
    assert reply == {"op": "OK", "generation": 1, "rules": 1}
    assert pool.generation == 1
    client.feed("new", "open")  # admitted under generation 1
    old = client.end("old")
    new = client.end("new")
    # Old rules fire on a lone open; the swapped rule needs open,use.
    assert old["violation_count"] == 1
    assert new["violation_count"] == 0


def test_swap_rejects_garbage_repository(client):
    assert client.request({"op": "SWAP", "repository": {"rules": "nope"}})["op"] == "ERROR"
    assert client.ping() == {"op": "PONG"}


def test_busy_propagates_over_the_wire():
    with MonitorPool(RULES, shards=1, queue_depth=2) as pool:
        with EventPushServer(pool, port=0) as server:
            host, port = server.address
            with PushClient(host, port) as push_client:
                pool.pause_shard(0)
                replies = [push_client.feed("s", f"e{n}")["op"] for n in range(20)]
                assert replies[-1] == "BUSY"
                assert "OK" in replies  # the queue accepted up to its bound
                assert push_client.end("s") == {"op": "BUSY"}  # END refused too
                pool.resume_shard(0)
                assert pool.drain(timeout=10.0)
                assert push_client.end("s")["op"] == "SESSION"


def test_pipelined_requests_reply_in_order(client):
    payloads = [{"op": "EVENT", "session": f"s{n % 7}", "event": "open"} for n in range(300)]
    replies = client.pipeline(payloads, window=32)
    assert len(replies) == 300
    assert all(reply == {"op": "OK"} for reply in replies)
    for n in range(7):
        assert client.end(f"s{n}")["op"] == "SESSION"


def test_shutdown_verb_stops_the_server(served):
    server, pool = served
    host, port = server.address
    with PushClient(host, port) as push_client:
        assert push_client.shutdown() == {"op": "OK"}
    server.close()
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=0.5).close()
