"""Watch-daemon integration tests: the mine→serve→monitor loop end to end."""

import json

import pytest

from repro.ingest import TraceRecord, TraceStore, write_trace_records
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.serving import WatchDaemon
from repro.specs.repository import SpecificationRepository


def _miner():
    return NonRedundantRecurrentRuleMiner(
        RuleMiningConfig(min_s_support=2, min_confidence=0.5)
    )


def _write(path, traces):
    write_trace_records(
        path, [TraceRecord(tuple(trace), f"{path.stem}-{i}") for i, trace in enumerate(traces)]
    )


@pytest.fixture
def dirs(tmp_path):
    watch = tmp_path / "watch"
    watch.mkdir()
    return watch, tmp_path / "store"


def test_daemon_runs_the_full_loop_end_to_end(dirs, tmp_path):
    """tail → ingest → incremental re-mine → hot-swap → monitor, one process."""
    watch, store = dirs
    repo_path = tmp_path / "specs.json"
    cycles = []
    daemon = WatchDaemon(
        watch, store, _miner(),
        repository_path=repo_path, persist_cache=True, on_cycle=cycles.append,
    )

    # Cycle 0: empty directory, empty store — primes a vacuous automaton.
    first = daemon.run_once()
    assert first.ingested == [] and not first.swapped and first.rules_served == 0
    assert first.refresh is not None and first.refresh.full_remine

    # Cycle 1: a file appears; its traces establish the rule a -> b.
    _write(watch / "day1.jsonl", [["a", "b"], ["a", "b"], ["a", "b"], ["a", "c", "b"]])
    second = daemon.run_once()
    assert [path.name for path, _ in second.ingested] == ["day1.jsonl"]
    assert second.traces_added == 4
    assert second.swapped and second.rules_served > 0
    premises = {rule.premise for rule in daemon.compiled.rules}
    assert ("a",) in premises
    # The new traces were monitored against the freshly swapped automaton.
    assert second.monitoring is not None
    assert second.monitoring.violation_count == 0
    assert second.monitoring.total_points > 0

    # Cycle 2: a violating trace arrives; the rule survives the re-mine
    # (confidence drops but stays above the threshold) and flags it.
    _write(watch / "day2.jsonl", [["a", "b"], ["a", "x"]])
    third = daemon.run_once()
    assert third.swapped  # the rule statistics moved: a new generation
    assert third.refresh is not None and not third.refresh.full_remine
    assert third.violation_count == 1
    (violation,) = third.monitoring.violations
    assert violation.rule.premise == ("a",)
    # Corpus-wide trace index: [a, x] is the 6th trace ever ingested.
    assert violation.trace_index == 5
    assert violation.trace_name == "day2-1"

    # Cycle 3: nothing new — no re-mine, no swap, no monitoring.
    fourth = daemon.run_once()
    assert fourth.ingested == [] and fourth.refresh is None
    assert not fourth.swapped and fourth.monitoring is None

    # Cumulative daemon state and the hot-swapped repository artifact.
    assert daemon.monitoring.violation_count == 1
    assert daemon.cycles_run == 4 and daemon.swaps == 2
    assert len(cycles) == 4
    saved = SpecificationRepository.load(repo_path)
    assert saved.rules == list(daemon.compiled.rules)
    assert saved.source["fingerprint"] == TraceStore.open(store).fingerprint
    assert saved.source["traces"] == 6


def test_prepopulated_store_is_served_before_any_file_appears(dirs):
    watch, store_dir = dirs
    store = TraceStore(store_dir)
    store.append_batch([["open", "close"], ["open", "close"]])
    daemon = WatchDaemon(watch, store, _miner())
    cycle = daemon.run_once()
    assert cycle.refresh is not None
    assert cycle.rules_served > 0
    assert cycle.monitoring is None  # nothing newly ingested to monitor


def test_unparseable_file_is_retried_only_after_it_changes(dirs):
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    bad = watch / "broken.jsonl"
    bad.write_text("this is not json\n", encoding="utf-8")

    cycle = daemon.run_once()
    assert [path.name for path, _ in cycle.failed] == ["broken.jsonl"]
    assert cycle.ingested == []

    # Unchanged file: not re-attempted (no tight retry loop on a bad file).
    again = daemon.run_once()
    assert again.failed == [] and again.ingested == []

    # The file is fixed (content and stat change): picked up again.
    _write(bad, [["a", "b"], ["a", "b"]])
    fixed = daemon.run_once()
    assert [path.name for path, _ in fixed.ingested] == ["broken.jsonl"]
    assert len(daemon.store) == 2


def test_undecodable_and_truncated_files_do_not_kill_the_daemon(dirs):
    """Parse failures beyond DataFormatError (bad UTF-8, torn gzip) are
    recorded as failed files, never daemon crashes."""
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    (watch / "binary.txt").write_bytes(b"\xff\xfe\x00garbage\x80")
    (watch / "torn.jsonl.gz").write_bytes(b"\x1f\x8b\x08\x00cut")
    cycle = daemon.run_once()
    assert cycle.ingested == []
    assert sorted(path.name for path, _ in cycle.failed) == ["binary.txt", "torn.jsonl.gz"]
    # Both carry the exception type for the operator's log line.
    reasons = dict((path.name, reason) for path, reason in cycle.failed)
    assert "UnicodeDecodeError" in reasons["binary.txt"] or "DataFormatError" in reasons["binary.txt"]
    # Unchanged bad files are not re-attempted; the daemon keeps serving.
    assert daemon.run_once().failed == []
    _write(watch / "good.jsonl", [["a", "b"], ["a", "b"]])
    assert [p.name for p, _ in daemon.run_once().ingested] == ["good.jsonl"]


def test_store_side_oserror_propagates_instead_of_blaming_the_file(dirs, monkeypatch):
    """A full disk / unwritable store must surface loudly — recording it
    as a per-file failure would silently drop traffic forever."""
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    _write(watch / "good.jsonl", [["a", "b"]])

    def disk_full(path, format=None):
        raise OSError(28, "No space left on device")  # no filename: store-side

    monkeypatch.setattr(daemon.store, "append_trace_file", disk_full)
    with pytest.raises(OSError, match="No space left"):
        daemon.run_once()
    # The file was not poisoned: once the store recovers it ingests fine.
    monkeypatch.undo()
    cycle = daemon.run_once()
    assert [path.name for path, _ in cycle.ingested] == ["good.jsonl"]


def test_watch_state_is_saved_per_committed_append(dirs, monkeypatch):
    """A crash between two appends must not lose the first file's state
    (a restart would re-append it, duplicating its traces)."""
    watch, store_dir = dirs
    daemon = WatchDaemon(watch, store_dir, _miner())
    _write(watch / "a.jsonl", [["a", "b"]])
    _write(watch / "b.jsonl", [["c", "d"]])
    original = type(daemon.store).append_trace_file
    calls = []

    def crash_on_second(self, path, format=None):
        if calls:
            raise KeyboardInterrupt  # the daemon dies mid-cycle
        calls.append(path)
        return original(self, path, format=format)

    monkeypatch.setattr(type(daemon.store), "append_trace_file", crash_on_second)
    with pytest.raises(KeyboardInterrupt):
        daemon.run_once()
    monkeypatch.undo()

    restarted = WatchDaemon(watch, daemon.store.directory, _miner())
    cycle = restarted.run_once()
    # Only the file whose append never committed is (re-)ingested.
    assert [path.name for path, _ in cycle.ingested] == ["b.jsonl"]
    assert len(restarted.store) == 2


def test_restart_with_a_different_directory_spelling_does_not_reingest(dirs):
    watch, store_dir = dirs
    daemon = WatchDaemon(watch, store_dir, _miner())
    _write(watch / "one.jsonl", [["a", "b"], ["a", "b"]])
    daemon.run_once()
    # Same directory, different spelling (unresolved, via ..).
    alias = watch.parent / f"{watch.name}-alias" / ".." / watch.name
    restarted = WatchDaemon(alias, store_dir, _miner())
    cycle = restarted.run_once()
    assert cycle.ingested == []
    assert len(restarted.store) == 2


def test_files_vanishing_mid_scan_are_skipped(dirs, monkeypatch):
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    ghost = watch / "ghost.jsonl"
    _write(ghost, [["a", "b"]])
    original_stat_key = WatchDaemon._stat_key

    def vanish_then_stat(path):
        if path.name == "ghost.jsonl":
            path.unlink(missing_ok=True)
        return original_stat_key(path)

    monkeypatch.setattr(WatchDaemon, "_stat_key", staticmethod(vanish_then_stat))
    cycle = daemon.run_once()
    assert cycle.ingested == [] and cycle.failed == []


def test_non_trace_files_are_ignored(dirs):
    watch, store = dirs
    (watch / "notes.log").write_text("not a trace format\n", encoding="utf-8")
    (watch / "README").write_text("also ignored\n", encoding="utf-8")
    daemon = WatchDaemon(watch, store, _miner())
    cycle = daemon.run_once()
    assert cycle.ingested == [] and cycle.failed == []


def test_identical_remine_does_not_swap(dirs):
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    _write(watch / "one.jsonl", [["a", "b"], ["a", "b"]])
    assert daemon.run_once().swapped
    # New traces over a fresh alphabet leave the a -> b statistics alone
    # only if the mined set is unchanged; appending an exact repeat of the
    # corpus *does* change supports, so use a rule-free alphabet instead.
    _write(watch / "two.jsonl", [["q"], ["r"]])
    cycle = daemon.run_once()
    assert cycle.ingested and not cycle.swapped
    assert daemon.swaps == 1


def test_daemon_restart_resumes_from_the_persisted_state(dirs):
    """A restart neither re-ingests old files nor re-mines untouched roots."""
    from repro.rules.nonredundant_miner import mine_non_redundant_rules

    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner(), persist_cache=True)
    _write(watch / "one.jsonl", [["a", "b"], ["a", "b"], ["c", "d"], ["c", "d"]])
    daemon.run_once()

    restarted = WatchDaemon(watch, store, _miner(), persist_cache=True)
    assert restarted.incremental.resumed_from_cache
    # one.jsonl is still in the watched directory but already in the store:
    # the persisted watch state prevents a duplicating re-append.
    _write(watch / "two.jsonl", [["a", "b"]])
    cycle = restarted.run_once()
    assert [path.name for path, _ in cycle.ingested] == ["two.jsonl"]
    assert len(restarted.store) == 5
    # The resumed record cache makes the refresh a delta, not a full mine.
    assert cycle.refresh is not None and not cycle.refresh.full_remine
    assert cycle.refresh.roots_remined < cycle.refresh.roots_total
    # And the served rules are exactly a from-scratch mine of the store.
    expected = mine_non_redundant_rules(
        restarted.store.snapshot(), min_s_support=2, min_confidence=0.5
    ).rules
    assert list(restarted.compiled.rules) == expected


def test_run_forever_honours_max_cycles(dirs):
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    assert daemon.run_forever(poll_interval=0.0, max_cycles=3) == 3
    assert daemon.cycles_run == 3


def test_watch_cycle_json_friendly_summary(dirs):
    """Cycle payloads serialise for log shipping (the CLI prints them)."""
    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner())
    _write(watch / "one.jsonl", [["a", "b"], ["a", "b"]])
    cycle = daemon.run_once()
    payload = {
        "cycle": cycle.index,
        "ingested": [str(path) for path, _ in cycle.ingested],
        "traces_added": cycle.traces_added,
        "rules": cycle.rules_served,
        "swapped": cycle.swapped,
        "violations": cycle.violation_count,
    }
    assert json.loads(json.dumps(payload)) == payload


def test_idle_cycles_count_toward_max_cycles(dirs):
    """--max-cycles bounds wall-clock polling: cycles that find no new
    files still count (the pinned semantics the CLI help documents)."""
    watch, store = dirs
    cycles = []
    daemon = WatchDaemon(watch, store, _miner(), on_cycle=cycles.append)
    _write(watch / "one.jsonl", [["a", "b"], ["a", "b"]])
    assert daemon.run_forever(poll_interval=0.0, max_cycles=4) == 4
    assert daemon.cycles_run == 4
    productive = [cycle for cycle in cycles if cycle.ingested]
    assert len(productive) == 1  # only the first cycle found work
    assert len(cycles) == 4  # ...but all four counted


def test_push_mode_serves_sessions_and_hot_swaps_the_pool(dirs):
    """Push mode: the daemon hosts the socket front end, and a re-mine
    swap reaches the pool — in-flight sessions finish on their admission
    generation while fresh sessions monitor the new rules."""
    from repro.serving import PushClient

    watch, store = dirs
    daemon = WatchDaemon(watch, store, _miner(), push_port=0)
    try:
        assert daemon.push_address is not None
        host, port = daemon.push_address
        with PushClient(host, port) as client:
            assert client.ping() == {"op": "PONG"}
            # Admitted under generation 0: the vacuous pre-mine rule set.
            client.feed("early", "a")
            _write(watch / "day1.jsonl", [["a", "b"], ["a", "b"], ["a", "b"]])
            cycle = daemon.run_once()
            assert cycle.swapped
            assert daemon.pool.generation == 1
            # No rules existed when "early" was admitted: nothing to violate.
            early = client.end("early")
            assert early["points"] == 0 and early["violation_count"] == 0
            # A fresh session monitors the freshly mined a -> b.
            client.feed_batch("late", ["a", "x"])
            late = client.end("late")
            assert late["violation_count"] >= 1
            assert late["violations"][0]["trace_name"] == "late"
            stats = client.stats()
            assert stats["generation"] == 1
            assert stats["sessions_closed"] == 2
    finally:
        daemon.close()
    daemon.close()  # idempotent
