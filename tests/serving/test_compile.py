"""Tests for the rule-set compiler: trie sharing, symbols, statistics."""

import pytest

from repro.core.errors import PatternError
from repro.rules.rule import RecurrentRule
from repro.serving import CompiledRuleSet, compile_rules
from repro.specs.repository import SpecificationRepository


def _rule(premise, consequent):
    return RecurrentRule(
        premise=tuple(premise),
        consequent=tuple(consequent),
        s_support=1,
        i_support=1,
        confidence=1.0,
    )


def test_compile_shares_premise_prefixes():
    compiled = compile_rules(
        [
            _rule(["a", "b", "c"], ["x"]),
            _rule(["a", "b", "d"], ["y"]),
            _rule(["a", "q"], ["z"]),
        ]
    )
    # Prefixes (a,b), (a,b) and (a): distinct prefix nodes are root, [a],
    # [a,b] — the second rule re-uses the whole (a, b) path.
    assert len(compiled.children) == 3
    stats = compiled.describe()
    assert stats["rules"] == 3
    assert stats["trie_nodes"] == 3
    assert stats["shared_prefix_events"] == 3  # 5 prefix events, 2 nodes
    assert stats["consequent_stages"] == 3


def test_compile_length_one_premises_arm_at_the_root():
    compiled = compile_rules([_rule(["a"], ["b"]), _rule(["c"], ["d"])])
    assert len(compiled.children) == 1
    assert compiled.root_armed == (0, 1)


def test_compile_empty_rule_set_is_valid():
    compiled = compile_rules(())
    assert len(compiled) == 0
    assert compiled.describe()["trie_nodes"] == 1


def test_compile_accepts_a_specification_repository():
    repository = SpecificationRepository()
    repository.add_rule(_rule(["open"], ["close"]))
    compiled = compile_rules(repository)
    assert compiled.rules == (repository.rules[0],)


def test_compile_keeps_duplicate_rules_distinct():
    duplicate = _rule(["a"], ["b"])
    compiled = compile_rules([duplicate, duplicate])
    assert len(compiled) == 2
    assert compiled.root_armed == (0, 1)


def test_compile_interns_symbols_only_for_rule_events():
    compiled = compile_rules([_rule(["a", "b"], ["c"])])
    assert set(compiled.symbol_of) == {"a", "b", "c"}
    assert "z" not in compiled.symbol_of


def test_compile_consequent_moves_are_descending_for_repeated_events():
    compiled = compile_rules([_rule(["a"], ["x", "x", "y"])])
    (moves,) = compiled.consequent_moves
    x = compiled.symbol_of["x"]
    assert moves[x] == (1, 0)


def test_compiled_rule_set_is_immutable_shape():
    compiled = compile_rules([_rule(["a"], ["b"])])
    assert isinstance(compiled, CompiledRuleSet)
    with pytest.raises(AttributeError):
        compiled.new_attribute = 1  # __slots__: no accidental mutable state


def test_rules_with_empty_parts_are_rejected_upstream():
    with pytest.raises(PatternError):
        _rule([], ["a"])
    with pytest.raises(PatternError):
        _rule(["a"], [])
