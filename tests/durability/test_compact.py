"""Compaction: tombstones, vocabulary GC, lineage re-root, crash safety."""

import pytest

from repro.core.errors import DataFormatError
from repro.durability.fsck import EXIT_CLEAN, EXIT_REPAIRED, audit_store
from repro.ingest.incremental import IncrementalMiner
from repro.ingest.store import TraceStore
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.testing import faults


def skewed_store(path):
    """Three batches where batch 1 holds nearly all bytes and the only
    traces using the 'bulk' labels — deleting it makes GC observable."""
    store = TraceStore(path)
    store.append_batch([["lock", "use", "unlock"]])
    store.append_batch([["bulk%d" % (i % 7) for i in range(50)] for _ in range(40)])
    store.append_batch([["lock", "unlock"], ["lock", "use", "use", "unlock"]])
    return store


def test_compact_drops_tombstones_and_gcs_labels(tmp_path):
    store = skewed_store(tmp_path / "store")
    survivors = [
        trace
        for batch in (0, 2)
        for trace in store.iter_traces(batch, batch + 1)
    ]
    old_fingerprint = store.fingerprint
    old_bytes = store.describe()["bytes"]
    assert store.mark_deleted([1]) == 1

    report = store.compact()
    assert report.batches_after == 2
    assert report.bytes_after < old_bytes // 10
    assert report.labels_before == 10 and report.labels_after == 3
    assert report.generation == 1
    assert report.compacted_from == old_fingerprint
    assert store.vocabulary.labels() == ("lock", "use", "unlock")
    # Surviving traces decode to the same label sequences, renumbered.
    assert [
        tuple(store.vocabulary.label_of(e) for e in trace.events)
        for trace in store.iter_traces()
    ] == [
        tuple("lock use unlock".split()),
        tuple("lock unlock".split()),
        tuple("lock use use unlock".split()),
    ] and len(survivors) == 3
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN


def test_compacted_store_reopens_and_appends(tmp_path):
    store = skewed_store(tmp_path / "store")
    store.mark_deleted([1])
    store.compact()
    reopened = TraceStore.open(tmp_path / "store")
    assert reopened.fingerprint == store.fingerprint
    assert reopened.generation == 1
    assert reopened.compacted_from is not None
    assert reopened.data_file == "traces-gen1.bin"
    reopened.append_batch([["lock", "unlock"]])
    assert len(reopened) == 4
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN


def test_compact_forces_full_remine(tmp_path):
    store = skewed_store(tmp_path / "store")
    miner = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2.0))
    incremental = IncrementalMiner(miner, store, persist=True)
    incremental.refresh()
    store.mark_deleted([1])
    store.compact()
    # The old lineage's persisted cache was dropped with the compaction;
    # a fresh incremental miner over the new lineage starts cold.
    fresh = IncrementalMiner(miner, TraceStore.open(tmp_path / "store"), persist=True)
    result, report = fresh.refresh()
    assert report.full_remine
    expected = miner.mine(TraceStore.open(tmp_path / "store").snapshot())
    assert result.as_rows() == expected.as_rows()


def test_mark_deleted_validates_indices(tmp_path):
    store = skewed_store(tmp_path / "store")
    with pytest.raises(DataFormatError):
        store.mark_deleted([7])
    # Tombstones persist across reopen without affecting reads until compact.
    store.mark_deleted([1])
    reopened = TraceStore.open(tmp_path / "store")
    assert [batch.deleted for batch in reopened.batches] == [False, True, False]
    assert len(reopened) == 43


def test_crash_at_swap_leaves_old_store_valid(tmp_path):
    store = skewed_store(tmp_path / "store")
    fingerprint = store.fingerprint
    store.mark_deleted([1])
    faults.install("compact.swap", "raise")
    try:
        with pytest.raises(faults.FaultInjected):
            store.compact()
    finally:
        faults.reset()
    # Old lineage untouched; the half-written generation is fsck debris.
    reopened = TraceStore.open(tmp_path / "store")
    assert reopened.fingerprint == fingerprint
    assert reopened.generation == 0
    report = audit_store(tmp_path / "store")
    assert report.exit_code in (EXIT_CLEAN, EXIT_REPAIRED)
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN


def test_manifest_failure_during_swap_rolls_back_memory(tmp_path):
    store = skewed_store(tmp_path / "store")
    fingerprint = store.fingerprint
    store.mark_deleted([1])
    faults.install("store.manifest", "enospc")
    try:
        with pytest.raises(OSError):
            store.compact()
    finally:
        faults.reset()
    # The in-memory store still describes the old lineage and stays usable.
    assert store.fingerprint == fingerprint
    assert store.generation == 0
    assert store.data_file == "traces.bin"
    store.compact()
    assert store.generation == 1
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN
