"""CRC-framed journal: round-trip, torn tails, reopen semantics."""

import struct
import zlib

from repro.durability.journal import (
    FRAME_HEADER,
    JournalWriter,
    atomic_write_bytes,
    atomic_write_text,
    read_frames,
)


def test_round_trip(tmp_path):
    path = tmp_path / "j.bin"
    with JournalWriter(path) as writer:
        writer.append(b"alpha")
        writer.append(b"")
        writer.append(b"x" * 10_000)
    payloads, valid = read_frames(path)
    assert payloads == [b"alpha", b"", b"x" * 10_000]
    assert valid == path.stat().st_size


def test_missing_file_reads_empty(tmp_path):
    payloads, valid = read_frames(tmp_path / "absent.bin")
    assert payloads == []
    assert valid == 0


def test_torn_header_stops_reader(tmp_path):
    path = tmp_path / "j.bin"
    with JournalWriter(path) as writer:
        writer.append(b"keep")
    good = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(FRAME_HEADER.pack(100, 0)[:5])  # half a header
    payloads, valid = read_frames(path)
    assert payloads == [b"keep"]
    assert valid == good


def test_torn_payload_stops_reader(tmp_path):
    path = tmp_path / "j.bin"
    with JournalWriter(path) as writer:
        writer.append(b"keep")
    good = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(FRAME_HEADER.pack(32, zlib.crc32(b"y" * 32)))
        handle.write(b"y" * 10)  # payload cut short
    payloads, valid = read_frames(path)
    assert payloads == [b"keep"]
    assert valid == good


def test_crc_mismatch_stops_reader(tmp_path):
    path = tmp_path / "j.bin"
    with JournalWriter(path) as writer:
        writer.append(b"keep")
        writer.append(b"flipped")
    with open(path, "r+b") as handle:
        handle.seek(-1, 2)
        last = handle.read(1)
        handle.seek(-1, 2)
        handle.write(bytes([last[0] ^ 0xFF]))
    payloads, _ = read_frames(path)
    assert payloads == [b"keep"]


def test_reopen_truncates_torn_tail_and_appends(tmp_path):
    path = tmp_path / "j.bin"
    with JournalWriter(path) as writer:
        writer.append(b"one")
    with open(path, "ab") as handle:
        handle.write(b"\x07\x00")  # torn header fragment
    with JournalWriter(path) as writer:
        assert writer.entries == 1
        writer.append(b"two")
    payloads, valid = read_frames(path)
    assert payloads == [b"one", b"two"]
    assert valid == path.stat().st_size


def test_header_size_matches_struct():
    assert FRAME_HEADER.size == struct.calcsize("<II")


def test_atomic_writes_leave_no_temp_files(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_text(target, "{}\n")
    assert target.read_text() == "{}\n"
    atomic_write_bytes(target, b"\x00\x01")
    assert target.read_bytes() == b"\x00\x01"
    assert list(tmp_path.glob("*.tmp")) == []
