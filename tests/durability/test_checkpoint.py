"""MiningCheckpoint: identity keying, replay, and resume planning."""

from collections import namedtuple

from repro.durability.checkpoint import (
    JOURNAL_NAME,
    MiningCheckpoint,
    file_fingerprint,
    miner_config_token,
    unit_key,
)
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig

# unit_key only reads .kind and .path; a namedtuple stands in for the
# engine's WorkUnit (and pickles cleanly, which record_spawn requires).
FakeUnit = namedtuple("FakeUnit", "kind path")
FakeShard = namedtuple("FakeShard", "roots")

IDENTITY = {"database": "abc123", "miner": "M", "config": "M()"}


def test_records_survive_reopen(tmp_path):
    root = FakeUnit("expand", (0,))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_unit(root, "outcome-0")
        ckpt.record_shard(FakeShard((1, 2)), "shard-out")
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        cached, remaining = ckpt.plan_resume([root, FakeUnit("expand", (1,))])
        assert cached == ["outcome-0"]
        assert remaining == [FakeUnit("expand", (1,))]
        assert ckpt.completed_shards() == {(1, 2): "shard-out"}


def test_identity_mismatch_discards_journal(tmp_path):
    root = FakeUnit("expand", (0,))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_unit(root, "outcome-0")
    other = dict(IDENTITY, config="M(min_support=3)")
    with MiningCheckpoint(tmp_path, other) as ckpt:
        cached, remaining = ckpt.plan_resume([root])
        assert cached == []
        assert remaining == [root]
        assert ckpt.entries == 0


def test_plan_resume_walks_spawn_lineage(tmp_path):
    root = FakeUnit("expand", (0,))
    child_a = FakeUnit("expand", (0, 0))
    child_b = FakeUnit("expand", (0, 1))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_spawn(root, (child_a, child_b))
        ckpt.record_unit(root, "root-out")
        ckpt.record_unit(child_a, "a-out")
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        cached, remaining = ckpt.plan_resume([root])
        # The root completed, so its journaled children are walked: A's
        # outcome is reused, B still needs mining.
        assert cached == ["root-out", "a-out"]
        assert remaining == [child_b]


def test_children_of_incomplete_unit_not_reused(tmp_path):
    root = FakeUnit("expand", (0,))
    child = FakeUnit("expand", (0, 0))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_spawn(root, (child,))
        ckpt.record_unit(child, "child-out")
        # root itself never completed
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        cached, remaining = ckpt.plan_resume([root])
        # Re-running root re-covers the whole subtree; reusing the stale
        # child would double-count its records.
        assert cached == []
        assert remaining == [root]


def test_orphan_discards_subtree(tmp_path):
    root = FakeUnit("expand", (0,))
    child = FakeUnit("expand", (0, 0))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_spawn(root, (child,))
        ckpt.record_unit(child, "child-out")
        ckpt.record_unit(root, "root-out")
        ckpt.record_orphan(root)
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        cached, remaining = ckpt.plan_resume([root])
        assert cached == []
        assert remaining == [root]


def test_torn_tail_costs_only_the_torn_entry(tmp_path):
    first = FakeUnit("expand", (0,))
    second = FakeUnit("expand", (1,))
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        ckpt.record_unit(first, "one")
        ckpt.record_unit(second, "two")
    with open(tmp_path / JOURNAL_NAME, "r+b") as handle:
        handle.truncate(handle.seek(0, 2) - 3)  # tear the last frame
    with MiningCheckpoint(tmp_path, IDENTITY) as ckpt:
        cached, remaining = ckpt.plan_resume([first, second])
        assert cached == ["one"]
        assert remaining == [second]


def test_unit_key_is_kind_and_path():
    assert unit_key(FakeUnit("expand", [1, 2])) == ("expand", (1, 2))


def test_miner_config_token_renders_full_config():
    miner = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2.0))
    token = miner_config_token(miner)
    assert token.startswith("ClosedIterativePatternMiner(")
    assert "min_support=2.0" in token
    # Two identically configured miners share one identity; a changed
    # threshold changes it (this is what keys both persistence layers).
    same = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2.0))
    other = ClosedIterativePatternMiner(IterativeMiningConfig(min_support=3.0))
    assert miner_config_token(same) == token
    assert miner_config_token(other) != token


def test_file_fingerprint_tracks_content(tmp_path):
    path = tmp_path / "f.txt"
    path.write_text("hello")
    first = file_fingerprint(path)
    assert first.startswith("file:")
    path.write_text("changed")
    assert file_fingerprint(path) != first
