"""Checkpoint resume through the engine: interrupted mines finish identical."""

import pytest

from repro.core.sequence import SequenceDatabase
from repro.durability.checkpoint import MiningCheckpoint
from repro.engine import resolve_backend
from repro.jboss.workloads import generate_security_traces
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.testing import faults

IDENTITY = {"database": "test-db", "miner": "M", "config": "M()"}


def pattern_miner():
    return ClosedIterativePatternMiner(IterativeMiningConfig(min_support=2.0))


def pattern_database():
    """Eight distinct roots, all frequent: enough planned units that a
    fault at journal entry 3 interrupts a genuinely unfinished mine."""
    sequences = [
        [f"e{i}", f"e{(i + 1) % 8}", f"e{(i + 2) % 8}"] for i in range(8)
    ] * 2
    return SequenceDatabase.from_sequences(sequences)


def interrupted_then_resumed(tmp_path, database, make_miner, backend_name):
    """Kill a mine at the Nth journal append, resume, return both results."""
    cold = make_miner().mine(database, backend=resolve_backend(backend_name, 1, None))

    ckpt_dir = tmp_path / "ckpt"
    backend = resolve_backend(backend_name, 1, None)
    backend.checkpoint = MiningCheckpoint(ckpt_dir, IDENTITY)
    faults.install("checkpoint.append", "raise", key="3")
    try:
        with pytest.raises(faults.FaultInjected):
            make_miner().mine(database, backend=backend)
    finally:
        faults.reset()
        backend.checkpoint.close()

    resumed_backend = resolve_backend(backend_name, 1, None)
    resumed_backend.checkpoint = MiningCheckpoint(ckpt_dir, IDENTITY)
    result = make_miner().mine(database, backend=resumed_backend)
    resumed_backend.checkpoint.close()
    return cold, result


def test_stealing_resume_is_identical_and_cheaper(tmp_path):
    database = pattern_database()
    cold, resumed = interrupted_then_resumed(
        tmp_path, database, pattern_miner, "stealing"
    )
    assert resumed.as_rows() == cold.as_rows()
    # At least the units journaled before the injected crash were reused,
    # so strictly fewer units were re-mined than a cold start runs.
    assert resumed.stats.extra.get("units_resumed", 0) >= 3
    # Cached outcomes carry their original counters, so merged stats stay
    # identical to an uninterrupted run — part of the byte-identity story.
    assert resumed.stats.visited == cold.stats.visited


def test_rule_mining_resume_is_identical(tmp_path):
    database = generate_security_traces()
    config = RuleMiningConfig(
        min_s_support=0.5,
        min_confidence=0.6,
        max_premise_length=1,
        max_consequent_length=2,
    )
    cold, resumed = interrupted_then_resumed(
        tmp_path,
        database,
        lambda: NonRedundantRecurrentRuleMiner(config),
        "stealing",
    )
    assert resumed.as_rows() == cold.as_rows()
    assert resumed.stats.extra.get("units_resumed", 0) >= 3


def test_completed_checkpoint_resumes_everything(tmp_path):
    database = pattern_database()
    backend = resolve_backend("stealing", 1, None)
    backend.checkpoint = MiningCheckpoint(tmp_path / "ckpt", IDENTITY)
    first = pattern_miner().mine(database, backend=backend)
    backend.checkpoint.close()

    again = resolve_backend("stealing", 1, None)
    again.checkpoint = MiningCheckpoint(tmp_path / "ckpt", IDENTITY)
    second = pattern_miner().mine(database, backend=again)
    again.checkpoint.close()
    assert second.as_rows() == first.as_rows()
    # Every planned unit came from the journal; nothing was re-mined.
    assert second.stats.extra.get("units_resumed", 0) >= 1
    assert second.stats.visited == first.stats.visited


def test_serial_backend_resumes_shards(tmp_path):
    database = pattern_database()
    backend = resolve_backend("serial", None, None)
    backend.checkpoint = MiningCheckpoint(tmp_path / "ckpt", IDENTITY)
    first = pattern_miner().mine(database, backend=backend)
    backend.checkpoint.close()

    again = resolve_backend("serial", None, None)
    again.checkpoint = MiningCheckpoint(tmp_path / "ckpt", IDENTITY)
    second = pattern_miner().mine(database, backend=again)
    again.checkpoint.close()
    assert second.as_rows() == first.as_rows()
    assert second.stats.extra.get("shards_resumed", 0) >= 1
