"""repro fsck: chain re-hash, torn-tail repair, stale-state detection."""

import pickle

from repro.durability.checkpoint import MiningCheckpoint
from repro.durability.fsck import EXIT_CLEAN, EXIT_CORRUPT, EXIT_REPAIRED, audit_store
from repro.ingest.store import TraceStore


def make_store(path):
    store = TraceStore(path)
    store.append_batch([["lock", "use", "unlock"], ["lock", "unlock"]])
    store.append_batch([["lock", "read", "unlock"]])
    return store


def test_clean_store_exits_zero(tmp_path):
    make_store(tmp_path / "store")
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_CLEAN
    assert report.lines() == []


def test_missing_manifest_is_corrupt(tmp_path):
    assert audit_store(tmp_path / "nowhere").exit_code == EXIT_CORRUPT


def test_flipped_payload_byte_is_corrupt(tmp_path):
    store = make_store(tmp_path / "store")
    with open(store.data_path, "r+b") as handle:
        handle.seek(2)
        byte = handle.read(1)
        handle.seek(2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_CORRUPT
    assert any("does not re-hash" in line for line in report.corruption)


def test_truncated_data_file_is_corrupt(tmp_path):
    store = make_store(tmp_path / "store")
    with open(store.data_path, "r+b") as handle:
        handle.truncate(store.batches[-1].offset - 1)
    assert audit_store(tmp_path / "store").exit_code == EXIT_CORRUPT


def test_torn_tail_repaired_then_clean(tmp_path):
    store = make_store(tmp_path / "store")
    with open(store.data_path, "ab") as handle:
        handle.write(b"\x00halfwritten")
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert any("torn tail" in line for line in report.issues)
    # Second pass: the repair held, and the store reopens cleanly.
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN
    assert len(TraceStore.open(tmp_path / "store")) == 3


def test_no_repair_reports_without_fixing(tmp_path):
    store = make_store(tmp_path / "store")
    with open(store.data_path, "ab") as handle:
        handle.write(b"\x00halfwritten")
    report = audit_store(tmp_path / "store", repair=False)
    assert report.exit_code == EXIT_REPAIRED
    assert report.repairs == []
    # Nothing was touched: a second audit sees the same torn tail.
    assert audit_store(tmp_path / "store", repair=False).issues == report.issues


def test_stray_tmp_file_removed(tmp_path):
    make_store(tmp_path / "store")
    (tmp_path / "store" / "manifest.json.tmp").write_text("{}")
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert not (tmp_path / "store" / "manifest.json.tmp").exists()


def test_orphan_data_file_removed(tmp_path):
    make_store(tmp_path / "store")
    (tmp_path / "store" / "traces-gen1.bin").write_bytes(b"abandoned")
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert not (tmp_path / "store" / "traces-gen1.bin").exists()


def test_stale_cache_removed_valid_cache_kept(tmp_path):
    store = make_store(tmp_path / "store")
    cache_dir = tmp_path / "store" / "cache"
    cache_dir.mkdir()
    stale = cache_dir / "Stale.records.pkl"
    stale.write_bytes(
        pickle.dumps({"synced_batches": 1, "fingerprint": "not-in-lineage"})
    )
    valid = cache_dir / "Valid.records.pkl"
    valid.write_bytes(
        pickle.dumps(
            {"synced_batches": 2, "fingerprint": store.batches[1].fingerprint}
        )
    )
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert not stale.exists()
    assert valid.exists()


def test_checkpoint_outside_lineage_removed_matching_kept(tmp_path):
    store = make_store(tmp_path / "store")
    good = MiningCheckpoint(
        tmp_path / "store" / "ckpt-good",
        {"database": store.fingerprint, "miner": "M", "config": "M()"},
    )
    good.close()
    bad = MiningCheckpoint(
        tmp_path / "store" / "ckpt-bad",
        {"database": "deadbeef", "miner": "M", "config": "M()"},
    )
    bad.close()
    flat = MiningCheckpoint(
        tmp_path / "store" / "ckpt-flat",
        {"database": "file:cafe", "miner": "M", "config": "M()"},
    )
    flat.close()
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert not (tmp_path / "store" / "ckpt-bad").exists()
    # In-lineage and flat-file checkpoints are out of scope for removal.
    assert (tmp_path / "store" / "ckpt-good").exists()
    assert (tmp_path / "store" / "ckpt-flat").exists()


def test_torn_checkpoint_journal_truncated(tmp_path):
    store = make_store(tmp_path / "store")
    ckpt_dir = tmp_path / "store" / "ckpt"
    with MiningCheckpoint(
        ckpt_dir, {"database": store.fingerprint, "miner": "M", "config": "M()"}
    ) as ckpt:
        ckpt.record_shard(type("S", (), {"roots": (1, 2)})(), "outcome")
    journal = ckpt_dir / "checkpoint.bin"
    journal.write_bytes(journal.read_bytes() + b"\x09\x00")
    report = audit_store(tmp_path / "store")
    assert report.exit_code == EXIT_REPAIRED
    assert any("torn checkpoint journal" in line for line in report.issues)
    assert audit_store(tmp_path / "store").exit_code == EXIT_CLEAN
