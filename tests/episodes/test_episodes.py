"""Tests for the episode-mining baselines (WINEPI, MINEPI, episode rules)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.sequence import SequenceDatabase
from repro.episodes.minepi import MinepiMiner, minimal_occurrences
from repro.episodes.rules import derive_episode_rules
from repro.episodes.windows import WinepiMiner, mine_episodes, window_support


def test_window_support_counts_supporting_windows():
    sequence = ["a", "b", "c", "a", "b"]
    # Windows of width 3: abc, bca, cab -> wait: slices [a,b,c], [b,c,a], [c,a,b]
    assert window_support(sequence, ["a", "b"], 3) == 2
    assert window_support(sequence, ["a", "c"], 3) == 1
    assert window_support(sequence, ["a", "b"], 2) == 2
    assert window_support(sequence, ["c"], 1) == 1


def test_window_support_episode_longer_than_window_is_zero():
    assert window_support(["a", "b", "c"], ["a", "b", "c"], 2) == 0


def test_window_support_invalid_width():
    with pytest.raises(ConfigurationError):
        window_support(["a"], ["a"], 0)


def test_the_window_barrier():
    """Events further apart than the window are invisible to episode mining —
    the limitation of episode mining the paper removes (Section 2)."""
    db = SequenceDatabase.from_sequences(
        [["lock", "x1", "x2", "x3", "x4", "unlock"]] * 3
    )
    narrow = mine_episodes(db, window_width=3, min_support=3)
    assert narrow.support_of(("lock", "unlock")) is None
    wide = mine_episodes(db, window_width=6, min_support=3)
    assert wide.support_of(("lock", "unlock")) == 3


def test_winepi_miner_finds_frequent_serial_episodes():
    db = SequenceDatabase.from_sequences([["a", "b", "a", "b", "a", "b"]])
    result = mine_episodes(db, window_width=3, min_support=3)
    assert result.support_of(("a", "b")) is not None
    assert result.support_of(("a", "b")) >= 3


def test_winepi_configuration_validation():
    with pytest.raises(ConfigurationError):
        WinepiMiner(window_width=0)
    with pytest.raises(ConfigurationError):
        WinepiMiner(window_width=3, min_support=0)


def test_minimal_occurrences_simple():
    assert minimal_occurrences(["a", "b", "a", "b"], ["a", "b"]) == [(0, 1), (2, 3)]
    assert minimal_occurrences(["a", "x", "b"], ["a", "b"]) == [(0, 2)]
    assert minimal_occurrences(["b", "b"], ["a", "b"]) == []


def test_minimal_occurrences_pick_latest_start():
    # The minimal occurrence ending at the final 'b' starts at the *second* 'a'.
    assert minimal_occurrences(["a", "a", "b"], ["a", "b"]) == [(1, 2)]


def test_minimal_occurrences_with_gap_constraint():
    sequence = ["a", "x", "x", "b", "a", "b"]
    unconstrained = minimal_occurrences(sequence, ["a", "b"])
    assert (4, 5) in unconstrained
    constrained = minimal_occurrences(sequence, ["a", "b"], max_gap=0)
    assert constrained == [(4, 5)]


def test_minimal_occurrences_invalid_arguments():
    with pytest.raises(ConfigurationError):
        minimal_occurrences(["a"], [])
    with pytest.raises(ConfigurationError):
        minimal_occurrences(["a"], ["a"], max_gap=-1)


def test_minepi_miner_supports():
    db = SequenceDatabase.from_sequences([["a", "b", "a", "b"], ["a", "b"]])
    result = MinepiMiner(min_support=2, max_episode_length=2).mine(db)
    assert result.support_of(("a", "b")) == 3
    assert result.support_of(("a",)) == 3


def test_episode_rules_confidence():
    db = SequenceDatabase.from_sequences([["a", "b", "c", "a", "b", "c"]])
    episodes = mine_episodes(db, window_width=3, min_support=1)
    rules = derive_episode_rules(episodes, min_confidence=0.1)
    assert len(rules) > 0
    for rule in rules:
        premise_support = episodes.support_of(rule.premise)
        assert premise_support is not None
        assert rule.confidence == pytest.approx(rule.support / premise_support)
        assert rule.episode == rule.premise + rule.consequent


def test_episode_rules_threshold_validation():
    db = SequenceDatabase.from_sequences([["a", "b"]])
    episodes = mine_episodes(db, window_width=2, min_support=1)
    with pytest.raises(ConfigurationError):
        derive_episode_rules(episodes, min_confidence=0)
