"""Tests for the LTL abstract syntax."""

from repro.ltl.ast import And, Atom, Finally, Globally, Implies, Next, atoms, depth


def test_rendering_matches_paper_notation():
    assert str(Finally(Atom("unlock"))) == "F(unlock)"
    assert str(Next(Finally(Atom("unlock")))) == "XF(unlock)"
    assert str(Globally(Implies(Atom("lock"), Next(Finally(Atom("unlock")))))) == (
        "G((lock -> XF(unlock)))"
    )
    assert str(And(Atom("a"), Atom("b"))) == "(a /\\ b)"
    assert str(Next(Atom("a"))) == "X(a)"


def test_chained_next_rendering_is_compact():
    assert str(Next(Globally(Atom("a")))) == "XG(a)"
    assert str(Next(Next(Atom("a")))) == "XX(a)"


def test_formula_builders():
    lock, unlock = Atom("lock"), Atom("unlock")
    assert lock.implies(unlock) == Implies(lock, unlock)
    assert (lock & unlock) == And(lock, unlock)
    assert lock.globally() == Globally(lock)
    assert lock.eventually() == Finally(lock)
    assert lock.next() == Next(lock)


def test_equality_and_hashing():
    first = Globally(Implies(Atom("a"), Finally(Atom("b"))))
    second = Globally(Implies(Atom("a"), Finally(Atom("b"))))
    assert first == second
    assert hash(first) == hash(second)
    assert first != Globally(Implies(Atom("a"), Finally(Atom("c"))))


def test_atoms_collects_events_in_order():
    formula = Globally(Implies(Atom("a"), Next(Finally(And(Atom("b"), Atom("a"))))))
    assert atoms(formula) == ("a", "b", "a")


def test_depth():
    assert depth(Atom("a")) == 1
    assert depth(Finally(Atom("a"))) == 2
    assert depth(Globally(Implies(Atom("a"), Finally(Atom("b"))))) == 4
