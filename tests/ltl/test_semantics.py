"""Tests for the finite-trace LTL semantics."""

from repro.ltl.ast import And, Atom, Finally, Globally, Implies, Next
from repro.ltl.semantics import holds
from repro.ltl.translate import rule_to_ltl


def test_atom():
    assert holds(Atom("a"), ["a", "b"])
    assert not holds(Atom("b"), ["a", "b"])
    assert holds(Atom("b"), ["a", "b"], position=1)
    assert not holds(Atom("a"), [])


def test_finally():
    assert holds(Finally(Atom("c")), ["a", "b", "c"])
    assert not holds(Finally(Atom("z")), ["a", "b", "c"])
    assert holds(Finally(Atom("a")), ["a"])  # F includes the current position


def test_next():
    assert holds(Next(Atom("b")), ["a", "b"])
    assert not holds(Next(Atom("a")), ["a", "b"])
    assert not holds(Next(Atom("a")), ["a"])  # no next position at the end


def test_globally():
    assert holds(Globally(Atom("a")), ["a", "a", "a"])
    assert not holds(Globally(Atom("a")), ["a", "b", "a"])
    assert holds(Globally(Atom("a")), [])  # vacuously true


def test_implication_and_conjunction():
    formula = Implies(Atom("a"), Finally(Atom("b")))
    assert holds(formula, ["a", "b"])
    assert holds(formula, ["c"])  # antecedent false
    assert holds(And(Atom("a"), Finally(Atom("b"))), ["a", "b"])
    assert not holds(And(Atom("a"), Finally(Atom("b"))), ["a"])


def test_table1_row3_lock_unlock():
    formula = Globally(Implies(Atom("lock"), Next(Finally(Atom("unlock")))))
    assert holds(formula, ["lock", "use", "unlock"])
    assert holds(formula, ["read", "write"])  # no lock at all
    assert not holds(formula, ["lock", "use"])
    assert not holds(formula, ["lock", "unlock", "lock"])  # second lock unmatched
    # XF requires a *later* unlock: a single event cannot satisfy itself.
    assert not holds(formula, ["lock"])


def test_table1_row4_nested_rule():
    formula = rule_to_ltl(("main", "lock"), ("unlock", "end"))
    assert holds(formula, ["main", "lock", "work", "unlock", "end"])
    assert not holds(formula, ["main", "lock", "work", "unlock"])
    assert holds(formula, ["lock", "unlock"])  # main never occurs before lock
    assert holds(formula, ["main", "setup"])  # lock never follows main


def test_evaluation_from_interior_positions():
    formula = Finally(Atom("c"))
    assert holds(formula, ["c", "a", "b"], position=0)
    assert not holds(formula, ["c", "a", "b"], position=1)


def test_memoisation_handles_repeated_subformulas():
    # A deeply nested translation evaluated over a longer trace exercises the
    # (formula, position) memo table; correctness is what matters here.
    premise = ("a", "b", "a")
    consequent = ("c", "d", "c", "d")
    formula = rule_to_ltl(premise, consequent)
    trace = ["a", "b", "a", "c", "d", "c", "d"] * 3
    assert holds(formula, trace) in (True, False)
