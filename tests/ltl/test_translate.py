"""Tests for rule <-> LTL translation (Table 2 and the Section 3.3 BNF)."""

import pytest

from repro.core.errors import PatternError
from repro.ltl.ast import And, Atom, Finally, Globally, Next
from repro.ltl.translate import consequent_to_ltl, is_minable, ltl_to_rule, rule_to_ltl


def test_table2_row1():
    assert str(rule_to_ltl(("a",), ("b",))) == "G((a -> XF(b)))"


def test_table2_row2():
    assert str(rule_to_ltl(("a", "b"), ("c",))) == "G((a -> XG((b -> XF(c)))))"


def test_table2_row3():
    assert str(rule_to_ltl(("a",), ("b", "c"))) == "G((a -> XF((b /\\ XF(c)))))"


def test_table2_row4():
    assert str(rule_to_ltl(("a", "b"), ("c", "d"))) == "G((a -> XG((b -> XF((c /\\ XF(d)))))))"


def test_consequent_with_repeated_event_uses_distinct_occurrences():
    # <a> -> <b, b>: the X operator is what makes the two b's distinct.
    formula = rule_to_ltl(("a",), ("b", "b"))
    assert str(formula) == "G((a -> XF((b /\\ XF(b)))))"


def test_round_trip_for_various_shapes():
    cases = [
        (("a",), ("b",)),
        (("a", "b"), ("c",)),
        (("a",), ("b", "c", "d")),
        (("x", "y", "z"), ("p", "q")),
        (("a", "a"), ("b", "b")),
    ]
    for premise, consequent in cases:
        assert ltl_to_rule(rule_to_ltl(premise, consequent)) == (premise, consequent)


def test_empty_sides_rejected():
    with pytest.raises(PatternError):
        rule_to_ltl((), ("a",))
    with pytest.raises(PatternError):
        rule_to_ltl(("a",), ())
    with pytest.raises(PatternError):
        consequent_to_ltl(())


def test_ltl_to_rule_rejects_formulas_outside_the_fragment():
    with pytest.raises(PatternError):
        ltl_to_rule(Atom("a"))
    with pytest.raises(PatternError):
        ltl_to_rule(Globally(Atom("a")))
    with pytest.raises(PatternError):
        ltl_to_rule(Globally(And(Atom("a"), Atom("b"))))
    with pytest.raises(PatternError):
        # F without the leading X is not produced by the BNF.
        ltl_to_rule(Globally(Atom("a").implies(Finally(Atom("b")))))


def test_is_minable():
    assert is_minable(rule_to_ltl(("a", "b"), ("c", "d")))
    assert not is_minable(Finally(Atom("a")))
    assert not is_minable(Globally(Next(Atom("a"))))
