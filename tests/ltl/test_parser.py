"""Tests for the LTL parser."""

import pytest

from repro.core.errors import DataFormatError
from repro.ltl.ast import And, Atom, Finally, Globally, Implies, Next
from repro.ltl.parser import parse_ltl
from repro.ltl.translate import rule_to_ltl


def test_parse_atom_and_unary_operators():
    assert parse_ltl("unlock") == Atom("unlock")
    assert parse_ltl("F(unlock)") == Finally(Atom("unlock"))
    assert parse_ltl("XF(unlock)") == Next(Finally(Atom("unlock")))
    assert parse_ltl("G(a)") == Globally(Atom("a"))


def test_parse_implication_and_conjunction():
    assert parse_ltl("a -> b") == Implies(Atom("a"), Atom("b"))
    assert parse_ltl("a /\\ b") == And(Atom("a"), Atom("b"))
    assert parse_ltl("a && b") == And(Atom("a"), Atom("b"))


def test_implication_is_right_associative_and_binds_weakest():
    assert parse_ltl("a -> b -> c") == Implies(Atom("a"), Implies(Atom("b"), Atom("c")))
    assert parse_ltl("a /\\ b -> c") == Implies(And(Atom("a"), Atom("b")), Atom("c"))


def test_parse_table1_formulas():
    assert parse_ltl("G(lock -> XF(unlock))") == Globally(
        Implies(Atom("lock"), Next(Finally(Atom("unlock"))))
    )
    nested = parse_ltl("G(main -> XG(lock -> XF(unlock -> XF(end))))")
    assert isinstance(nested, Globally)


def test_round_trip_through_str():
    for premise, consequent in [(("a",), ("b",)), (("a", "b"), ("c", "d"))]:
        formula = rule_to_ltl(premise, consequent)
        assert parse_ltl(str(formula)) == formula


def test_method_call_atoms_are_supported():
    formula = parse_ltl("G(TxManager.begin -> XF(TxManager.commit))")
    assert formula == Globally(
        Implies(Atom("TxManager.begin"), Next(Finally(Atom("TxManager.commit"))))
    )


def test_parse_errors():
    with pytest.raises(DataFormatError):
        parse_ltl("")
    with pytest.raises(DataFormatError):
        parse_ltl("G(a")
    with pytest.raises(DataFormatError):
        parse_ltl("a -> ")
    with pytest.raises(DataFormatError):
        parse_ltl("a b")
    with pytest.raises(DataFormatError):
        parse_ltl("(a -> b) %%")
