"""Tests for the Table 1 English rendering."""

from repro.ltl.ast import Atom, Finally, Globally, Next
from repro.ltl.parser import parse_ltl
from repro.ltl.pretty import describe_rule, explain
from repro.ltl.translate import rule_to_ltl


def test_table1_row1():
    assert explain(Finally(Atom("unlock"))) == "Eventually unlock is called"


def test_table1_row2():
    assert (
        explain(Next(Finally(Atom("unlock"))))
        == "From the next event onwards, eventually unlock is called"
    )


def test_table1_row3():
    formula = parse_ltl("G(lock -> XF(unlock))")
    assert explain(formula) == (
        "Globally whenever lock is called, then from the next event onwards, "
        "eventually unlock is called"
    )


def test_table1_row4():
    formula = rule_to_ltl(("main", "lock"), ("unlock", "end"))
    assert explain(formula) == (
        "Globally whenever main followed by lock are called, then from the next event "
        "onwards, eventually unlock followed by end are called"
    )


def test_fallback_for_other_formulas():
    text = explain(Globally(Atom("ping")))
    assert "G(ping)" in text


def test_describe_rule_single_and_multi_event():
    assert describe_rule(("lock",), ("unlock",)) == (
        "Whenever lock has just occurred, eventually unlock occurs"
    )
    text = describe_rule(("connect", "auth"), ("transfer", "receipt"))
    assert text.startswith("Whenever connect followed by auth have just occurred")
    assert text.endswith("transfer followed by receipt occur")
