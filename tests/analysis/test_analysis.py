"""Tests for the experiment harness, comparisons and reporting."""

import pytest

from repro.analysis.compare import (
    closed_result_is_consistent,
    headline_ratios,
    nonredundant_result_is_consistent,
)
from repro.analysis.experiment import (
    SweepRow,
    iterative_pattern_sweep,
    rule_sweep_vs_confidence,
    rule_sweep_vs_s_support,
)
from repro.analysis.reporting import format_series, format_sweep, format_table
from repro.core.sequence import SequenceDatabase
from repro.patterns.closed_miner import mine_closed_patterns
from repro.patterns.full_miner import mine_frequent_patterns
from repro.rules.config import RuleMiningConfig
from repro.rules.full_miner import FullRecurrentRuleMiner
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner


@pytest.fixture
def protocol_db():
    return SequenceDatabase.from_sequences(
        [
            ["open", "read", "write", "close", "open", "close"],
            ["open", "read", "close"],
            ["open", "write", "close", "idle"],
            ["open", "read", "write", "close"],
        ]
    )


def test_sweep_row_ratios():
    row = SweepRow("min_sup", 0.1, baseline_runtime=2.0, baseline_count=100, proposed_runtime=0.5, proposed_count=4)
    assert row.runtime_ratio == pytest.approx(4.0)
    assert row.count_ratio == pytest.approx(25.0)
    payload = row.as_dict()
    assert payload["min_sup"] == 0.1
    assert payload["baseline_count"] == 100.0


def test_sweep_row_handles_zero_proposed_values():
    row = SweepRow("min_sup", 0.1, 1.0, 10, 0.0, 0)
    assert row.runtime_ratio == float("inf")
    assert row.count_ratio == float("inf")


def test_iterative_pattern_sweep_shapes(protocol_db):
    rows = iterative_pattern_sweep(protocol_db, min_supports=[4, 3])
    assert [row.threshold for row in rows] == [4, 3]
    for row in rows:
        assert row.proposed_count <= row.baseline_count
        assert row.baseline_count > 0
        assert row.baseline_runtime >= 0.0


def test_rule_sweeps_shapes(protocol_db):
    s_rows = rule_sweep_vs_s_support(
        protocol_db, min_s_supports=[3, 2], min_confidence=0.6, max_consequent_length=3
    )
    assert [row.threshold for row in s_rows] == [3, 2]
    c_rows = rule_sweep_vs_confidence(
        protocol_db, min_confidences=[0.9, 0.6], min_s_support=2, max_consequent_length=3
    )
    assert [row.threshold for row in c_rows] == [0.9, 0.6]
    for row in s_rows + c_rows:
        assert row.proposed_count <= row.baseline_count
    # Lowering a threshold can only produce at least as many results.
    assert s_rows[1].baseline_count >= s_rows[0].baseline_count
    assert c_rows[1].baseline_count >= c_rows[0].baseline_count


def test_headline_ratios_picks_the_best_row():
    rows = [
        SweepRow("min_sup", 0.2, 1.0, 10, 1.0, 5),
        SweepRow("min_sup", 0.1, 9.0, 900, 3.0, 9),
    ]
    ratios = headline_ratios(rows)
    assert ratios.max_runtime_ratio == pytest.approx(3.0)
    assert ratios.max_count_ratio == pytest.approx(100.0)
    assert ratios.at_threshold_count == 0.1
    assert "fewer" in ratios.describe("patterns")


def test_headline_ratios_empty():
    ratios = headline_ratios([])
    assert ratios.max_runtime_ratio == 1.0


def test_closed_result_consistency_check(protocol_db):
    full = mine_frequent_patterns(protocol_db, min_support=3)
    closed = mine_closed_patterns(protocol_db, min_support=3)
    assert closed_result_is_consistent(full, closed) == []
    # Break the closed result on purpose: drop everything.
    closed.patterns = []
    assert closed_result_is_consistent(full, closed) != []


def test_nonredundant_result_consistency_check(protocol_db):
    config = RuleMiningConfig(min_s_support=2, min_confidence=0.6, max_consequent_length=3)
    full = FullRecurrentRuleMiner(config).mine(protocol_db)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(protocol_db)
    assert nonredundant_result_is_consistent(full, non_redundant) == []
    non_redundant.rules = []
    assert nonredundant_result_is_consistent(full, non_redundant) != []


def test_format_table_alignment_and_missing_values():
    rows = [{"a": 1, "b": "x"}, {"a": 2.5}]
    text = format_table(rows)
    assert "a" in text and "b" in text
    assert "2.5" in text
    assert format_table([]) == "(no rows)"


def test_format_sweep_and_series(protocol_db):
    rows = iterative_pattern_sweep(protocol_db, min_supports=[3])
    text = format_sweep(rows, baseline_label="Full", proposed_label="Closed")
    assert "Full runtime (s)" in text and "Closed results" in text
    series = format_series(rows)
    assert series["x"] == [3]
    assert len(series["baseline_count"]) == 1
    assert format_sweep([]) == "(no sweep rows)"
