"""Registry merge determinism across execution backends.

The engine's workers record their measurements into throwaway delta
registries shipped inside each :class:`UnitOutcome` / :class:`ShardOutcome`
and merged exactly once by the coordinator.  These tests pin the resulting
contract: whatever the backend — single process, forked pool, stealing
threads — the merged registry equals what a single-process run records,
and internal accounting (histogram counts vs. counters vs. ``MiningStats``)
always reconciles, proving every delta arrived exactly once.
"""

from hypothesis import given, settings, strategies as st

from repro.core.sequence import SequenceDatabase
from repro.engine import ProcessPoolBackend, SerialBackend
from repro.engine.stealing import WorkStealingBackend
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    ENGINE_SHARD_SECONDS,
    ENGINE_SHARDS_TOTAL,
    ENGINE_UNIT_SECONDS,
    ENGINE_UNITS_TOTAL,
    MINING_COUNTER_TOTAL,
    MINING_EXTRA_TOTAL,
    REGISTRY,
)
from repro.patterns.closed_miner import mine_closed_patterns

sequences_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=4).map(str), min_size=1, max_size=12),
    min_size=1,
    max_size=5,
)

#: The deterministic slice of the mirror: search-shape counters are a pure
#: function of the database, never of scheduling.
SEARCH_COUNTERS = ("visited", "emitted", "pruned_support", "pruned_closure")


def _mine_and_scrape(database, backend=None):
    """Run one mine against a zeroed global registry; return its mirror."""
    REGISTRY.reset()
    result = mine_closed_patterns(database, min_support=2, backend=backend)
    mirror = {
        name: MINING_COUNTER_TOTAL.value(name=name) for name in SEARCH_COUNTERS
    }
    return result, mirror


@given(sequences=sequences_strategy, max_shards=st.integers(min_value=2, max_value=5))
@settings(max_examples=40, deadline=None)
def test_sharded_serial_mirror_matches_single_process(sequences, max_shards):
    database = SequenceDatabase.from_sequences(sequences)
    _, single = _mine_and_scrape(database)
    result, sharded = _mine_and_scrape(database, SerialBackend(max_shards=max_shards))
    assert sharded == single
    for name in SEARCH_COUNTERS:
        assert sharded[name] == getattr(result.stats, name)
    # Every shard's delta arrived exactly once: the per-shard histogram and
    # the shard counter agree (zero shards only when nothing was frequent).
    shards = ENGINE_SHARDS_TOTAL.value()
    assert ENGINE_SHARD_SECONDS.sample()[2] == shards
    if result.stats.visited:
        assert shards >= 1


@given(sequences=sequences_strategy)
@settings(max_examples=4, deadline=None)
def test_process_pool_deltas_merge_like_single_process(sequences):
    """Worker registries crossing the pickle boundary merge losslessly."""
    database = SequenceDatabase.from_sequences(sequences)
    _, single = _mine_and_scrape(database)
    result, pooled = _mine_and_scrape(database, ProcessPoolBackend(workers=2))
    assert pooled == single
    for name in SEARCH_COUNTERS:
        assert pooled[name] == getattr(result.stats, name)
    shards = ENGINE_SHARDS_TOTAL.value()
    assert ENGINE_SHARD_SECONDS.sample()[2] == shards
    if result.stats.visited:
        assert shards >= 1


def test_stealing_deltas_reconcile_with_stats():
    """Thread-pool unit deltas arrive exactly once, split or not.

    Unit *counts* are scheduling-dependent (splits happen when workers go
    hungry), so the invariant pinned here is reconciliation: the mirror
    equals this run's own merged ``MiningStats``, and the per-unit
    histogram sums to the unit counters across every kind.
    """
    database = SequenceDatabase.from_sequences(
        [["a", "b", "c", "a", "b", "c"], ["a", "b", "a", "c"], ["b", "c", "a", "b"]] * 3
    )
    REGISTRY.reset()
    backend = WorkStealingBackend(workers=2, eager_split=True, split_depth=4)
    result = mine_closed_patterns(database, min_support=2, backend=backend)
    for name in SEARCH_COUNTERS:
        assert MINING_COUNTER_TOTAL.value(name=name) == getattr(result.stats, name)
    for key, value in result.stats.extra.items():
        assert MINING_EXTRA_TOTAL.value(key=key) == value
    snapshot = REGISTRY.snapshot()
    unit_samples = snapshot[ENGINE_UNITS_TOTAL.name]["samples"]
    units_by_kind = {key[0]: value for key, value in ((tuple(k), v) for k, v in unit_samples)}
    assert sum(units_by_kind.values()) >= 1
    for (kind,), counts, _, count in snapshot[ENGINE_UNIT_SECONDS.name]["samples"]:
        assert count == units_by_kind[kind]
        assert sum(counts) == count


def test_muted_runs_ship_no_deltas():
    database = SequenceDatabase.from_sequences([["a", "b"], ["a", "b"]])
    REGISTRY.reset()
    obs_metrics.set_enabled(False)
    try:
        mine_closed_patterns(database, min_support=2, backend=SerialBackend(max_shards=2))
    finally:
        obs_metrics.set_enabled(True)
    assert ENGINE_SHARDS_TOTAL.value() == 0
    assert MINING_COUNTER_TOTAL.value(name="visited") == 0


# --------------------------------------------------------------------- #
# Scrapes racing merges: a render must always be a consistent exposition.
# --------------------------------------------------------------------- #
_BUCKETS = (0.01, 0.1, 1.0)

observations_strategy = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["open", "close", "swap"]),
            st.integers(min_value=1, max_value=5),
            st.floats(min_value=0.001, max_value=2.0),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=2,
    max_size=12,
)


def _delta_snapshot(observations):
    """What a worker ships: a throwaway registry's snapshot."""
    delta = obs_metrics.MetricsRegistry()
    ops = delta.counter("race_ops_total", "ops", labels=("op",))
    seconds = delta.histogram("race_seconds", "dur", labels=("op",), buckets=_BUCKETS)
    for op, amount, duration in observations:
        ops.inc(amount, op=op)
        seconds.observe(duration, op=op)
    return delta.snapshot()


def _assert_consistent_exposition(text):
    """Every scrape, mid-merge or not, is a well-formed, self-consistent
    exposition: numeric samples, monotone cumulative buckets, and +Inf /
    _count / raw-increment agreement within every histogram series."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name and " " not in value, f"malformed sample line: {line!r}"
        series[name] = float(value)
    for op in ("open", "close", "swap"):
        bounds = [f'{bound:g}' for bound in _BUCKETS]
        cumulative = [
            series.get(f'race_seconds_bucket{{op="{op}",le="{b}"}}', 0.0) for b in bounds
        ]
        assert cumulative == sorted(cumulative), f"buckets not monotone for {op}"
        inf = series.get(f'race_seconds_bucket{{op="{op}",le="+Inf"}}', 0.0)
        count = series.get(f'race_seconds_count{{op="{op}"}}', 0.0)
        assert inf == count
        assert cumulative[-1] <= count if cumulative else True
    return series


@given(rounds=observations_strategy)
@settings(max_examples=15, deadline=None)
def test_concurrent_scrapes_race_delta_merges(rounds):
    """METRICS scrapes interleaving worker-delta merges stay consistent.

    One thread folds worker deltas into a shared registry (the coordinator
    path) while the main thread scrapes continuously; every intermediate
    exposition must parse and satisfy the per-family invariants, and the
    final totals must equal the exact sums — every delta exactly once.
    """
    import threading

    registry = obs_metrics.MetricsRegistry()
    registry.counter("race_ops_total", "ops", labels=("op",))
    registry.histogram("race_seconds", "dur", labels=("op",), buckets=_BUCKETS)
    snapshots = [_delta_snapshot(observations) for observations in rounds]

    merged = threading.Event()

    def merge_all():
        for snapshot in snapshots:
            registry.merge(snapshot)
        merged.set()

    merger = threading.Thread(target=merge_all)
    merger.start()
    scrapes = 0
    while not merged.is_set() or scrapes == 0:
        _assert_consistent_exposition(registry.render_text())
        scrapes += 1
    merger.join()

    final = _assert_consistent_exposition(registry.render_text())
    expected_ops = {}
    expected_count = {}
    for observations in rounds:
        for op, amount, _ in observations:
            expected_ops[op] = expected_ops.get(op, 0) + amount
            expected_count[op] = expected_count.get(op, 0) + 1
    for op, total in expected_ops.items():
        assert final[f'race_ops_total{{op="{op}"}}'] == total
        assert final[f'race_seconds_count{{op="{op}"}}'] == expected_count[op]
