"""Wire exposition tests: the METRICS verb, framing, pipelining, CLI scrape."""

import pytest

from repro.obs.metrics import REGISTRY
from repro.rules.rule import RecurrentRule
from repro.serving.pool import MonitorPool
from repro.serving.server import EventPushServer, PushClient

RULES = [
    RecurrentRule(
        premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0
    ),
]


@pytest.fixture
def served():
    with MonitorPool(RULES, shards=2, queue_depth=64) as pool:
        server = EventPushServer(pool, port=0)
        server.start()
        try:
            yield server, pool
        finally:
            server.close()


@pytest.fixture
def client(served):
    server, _ = served
    host, port = server.address
    with PushClient(host, port) as push_client:
        yield push_client


def _parse_exposition(text):
    """Parse Prometheus text into {sample_name_with_labels: value}; every
    non-comment line must be well-formed ``name[{labels}] value``."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name, f"malformed sample line: {line!r}"
        float(value)  # must parse
        samples[name] = float(value)
    return samples


def test_metrics_verb_returns_prometheus_text(client):
    reply = client.request({"op": "METRICS"})
    assert reply["op"] == "METRICS"
    assert reply["content_type"].startswith("text/plain")
    samples = _parse_exposition(reply["text"])
    # The whole catalogue is visible from one scrape: engine, pool,
    # server and durability families all render (the acceptance criterion).
    for family in (
        "repro_engine_shards_total",
        "repro_pool_sessions_active",
        "repro_server_requests_total",
        "repro_durability_journal_appends_total",
    ):
        assert f"# TYPE {family}" in reply["text"], family
    assert "repro_pool_sessions_active" in samples


def test_metrics_reflect_served_traffic(client):
    REGISTRY.reset()
    assert client.feed("s1", "open")["op"] == "OK"
    assert client.feed("s1", "close")["op"] == "OK"
    client.end("s1")
    text = client.metrics()
    samples = _parse_exposition(text)
    assert samples['repro_server_requests_total{op="EVENT"}'] == 2
    assert samples['repro_server_requests_total{op="END"}'] == 1
    assert samples["repro_pool_events_total"] == 2
    assert samples["repro_pool_sessions_opened_total"] == 1
    assert samples["repro_pool_sessions_closed_total"] == 1
    # The scrape itself is counted on the request histogram by the time a
    # *second* scrape renders.
    again = _parse_exposition(client.metrics())
    assert again['repro_server_requests_total{op="METRICS"}'] >= 1
    assert again['repro_server_request_seconds_count{op="EVENT"}'] == 2


def test_metrics_pipelines_between_other_verbs(client):
    """METRICS replies keep frame order inside a pipelined burst."""
    payloads = [
        {"op": "PING"},
        {"op": "EVENT", "session": "p", "event": "open"},
        {"op": "METRICS"},
        {"op": "EVENT", "session": "p", "event": "close"},
        {"op": "METRICS"},
        {"op": "END", "session": "p"},
    ]
    replies = client.pipeline(payloads, window=3)
    assert [reply["op"] for reply in replies] == [
        "PONG",
        "OK",
        "METRICS",
        "OK",
        "METRICS",
        "SESSION",
    ]
    first, second = replies[2]["text"], replies[4]["text"]
    _parse_exposition(first)
    # The second scrape happened after one more EVENT was dispatched.
    assert (
        _parse_exposition(second)['repro_server_requests_total{op="EVENT"}']
        > _parse_exposition(first)['repro_server_requests_total{op="EVENT"}']
    )


def test_unknown_verbs_land_in_the_other_label(client):
    REGISTRY.reset()
    reply = client.request({"op": "NO_SUCH_VERB"})
    assert reply["op"] == "ERROR"
    samples = _parse_exposition(client.metrics())
    assert samples['repro_server_requests_total{op="other"}'] == 1
    assert samples["repro_server_errors_total"] == 1


def test_cli_metrics_scrapes_a_live_server(served, capsys):
    from repro.cli import main

    server, _ = served
    host, port = server.address
    assert main(["metrics", "--host", host, "--port", str(port)]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_server_requests_total counter" in out
    _parse_exposition(out)


def test_cli_metrics_reports_connection_failure(capsys):
    from repro.cli import main

    # A port nothing listens on: error on stderr, exit code 2.
    assert main(["metrics", "--host", "127.0.0.1", "--port", "1"]) == 2
    assert "error:" in capsys.readouterr().err
