"""HTTP exposition sidecar tests: real-socket GETs against the three
endpoints, degraded health, and the CLI/daemon plumbing that hosts it."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpexpo import MetricsHTTPServer
from repro.rules.rule import RecurrentRule
from repro.serving.pool import MonitorPool

RULES = [
    RecurrentRule(
        premise=("open",), consequent=("close",), s_support=2, i_support=2, confidence=1.0
    ),
]


def _get(address, path):
    host, port = address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as response:
            return response.status, response.headers.get("Content-Type"), response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read()


@pytest.fixture
def pool():
    with MonitorPool(RULES, shards=2, queue_depth=64) as live_pool:
        yield live_pool


@pytest.fixture
def expo(pool):
    with MetricsHTTPServer(port=0, pool=pool) as server:
        yield server


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, expo, pool):
        pool.feed_batch("s1", ["open", "close"])
        pool.end_session("s1").wait(timeout=10)
        status, content_type, body = _get(expo.address, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE repro_pool_events_total counter" in text
        # The scrape refreshed the pool's level gauges first.
        assert "repro_pool_sessions_active 0" in text

    def test_healthz_ok_while_shards_live(self, expo):
        status, content_type, body = _get(expo.address, "/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["checks"]["pool"]["shards"] == 2
        assert payload["checks"]["pool"]["shards_alive"] == 2

    def test_healthz_degraded_when_daemon_backing_off(self, pool):
        class FakeDaemon:
            consecutive_failures = 3
            current_backoff = 16.0
            last_error = "OSError: disk on fire"

        with MetricsHTTPServer(port=0, pool=pool, daemon=FakeDaemon()) as expo:
            status, _, body = _get(expo.address, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["checks"]["daemon"]["consecutive_failures"] == 3
        assert "disk on fire" in payload["checks"]["daemon"]["last_error"]

    def test_statusz_carries_pool_stats_and_registry(self, expo):
        status, content_type, body = _get(expo.address, "/statusz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["pool"]["shards"] == 2
        assert "metrics" in payload

    def test_unknown_path_is_404(self, expo):
        status, _, _ = _get(expo.address, "/nope")
        assert status == 404

    def test_bare_server_without_components(self):
        # No pool, no daemon: still scrapes, health is vacuously ok.
        with MetricsHTTPServer(port=0) as expo:
            assert _get(expo.address, "/metrics")[0] == 200
            status, _, body = _get(expo.address, "/healthz")
        assert status == 200
        assert json.loads(body)["checks"] == {}


class TestLifecycle:
    def test_start_is_idempotent_and_close_releases_port(self, pool):
        expo = MetricsHTTPServer(port=0, pool=pool)
        first = expo.start()
        assert expo.start() == first
        expo.close()
        expo.close()  # idempotent
        with pytest.raises(OSError):
            _get(first, "/metrics")

    def test_daemon_hosts_and_closes_the_sidecar(self, tmp_path):
        from repro.rules.config import RuleMiningConfig
        from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
        from repro.serving.daemon import WatchDaemon

        watch_dir = tmp_path / "watch"
        watch_dir.mkdir()
        daemon = WatchDaemon(
            watch_dir,
            tmp_path / "store",
            NonRedundantRecurrentRuleMiner(RuleMiningConfig(min_s_support=2)),
            push_port=0,
            http_port=0,
        )
        try:
            address = daemon.http_address
            assert address is not None
            status, _, body = _get(address, "/healthz")
            assert status == 200
            assert json.loads(body)["checks"]["pool"]["shards_alive"] > 0
        finally:
            daemon.close()
        assert daemon.http_address is None
        with pytest.raises(OSError):
            _get(address, "/healthz")
