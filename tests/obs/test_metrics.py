"""Unit tests for the metrics registry: families, rendering, merging."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestFamilies:
    def test_counter_accumulates_per_label(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labels=("op",))
        counter.inc(op="a")
        counter.inc(2, op="a")
        counter.inc(op="b")
        assert counter.value(op="a") == 3
        assert counter.value(op="b") == 1
        assert counter.value(op="absent") == 0

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        counts, total, count = histogram.sample()
        assert counts == [1, 2, 1]  # <=0.1, <=1.0, overflow
        assert total == pytest.approx(6.05)
        assert count == 4

    def test_histogram_timer_observes(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds")
        with histogram.time():
            pass
        assert histogram.sample()[2] == 1

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("op",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(op="a", extra="b")

    def test_redeclaration_idempotent_conflict_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("name_total", "help", labels=("a",))
        assert registry.counter("name_total", "help", labels=("a",)) is counter
        with pytest.raises(ValueError):
            registry.gauge("name_total")
        with pytest.raises(ValueError):
            registry.counter("name_total", labels=("b",))
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        assert registry.histogram("h", buckets=(1.0, 2.0)) is histogram
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_bucket_bounds_validated_at_declaration(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("empty", buckets=())
        with pytest.raises(ValueError, match="positive"):
            registry.histogram("neg", buckets=(-1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            registry.histogram("zero", buckets=(0.0, 2.0))
        with pytest.raises(ValueError, match="sorted strictly ascending"):
            registry.histogram("unsorted", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted strictly ascending"):
            registry.histogram("dup", buckets=(1.0, 1.0))
        # Each family picks its own scale at declaration time.
        fine = registry.histogram("fine_seconds", buckets=obs_metrics.SERVING_BUCKETS)
        coarse = registry.histogram("coarse_seconds", buckets=obs_metrics.UNIT_BUCKETS)
        assert fine.buckets[0] < DEFAULT_BUCKETS[0] < coarse.buckets[-1]
        assert coarse.buckets[-1] > DEFAULT_BUCKETS[-1]

    def test_muted_records_are_dropped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h_seconds")
        obs_metrics.set_enabled(False)
        try:
            counter.inc()
            histogram.observe(0.5)
        finally:
            obs_metrics.set_enabled(True)
        assert counter.value() == 0
        assert histogram.sample()[2] == 0
        counter.inc()
        assert counter.value() == 1


class TestRenderText:
    def test_prometheus_shape(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.", labels=("op",)).inc(2, op="PING")
        registry.gauge("depth", "Depth.").set(3)
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render_text()
        assert "# HELP req_total Requests.\n# TYPE req_total counter" in text
        assert 'req_total{op="PING"} 2' in text
        assert "# TYPE depth gauge" in text and "depth 3" in text
        # Cumulative buckets plus the implicit +Inf, then sum and count.
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_declared_but_empty_family_still_renders_header(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "Never incremented.")
        text = registry.render_text()
        assert "# HELP quiet_total Never incremented." in text
        assert "# TYPE quiet_total counter" in text

    def test_global_registry_exposes_whole_catalogue(self):
        # Importing the module declares every family: a scrape of a serve
        # box shows engine, pool, server and durability families even
        # before any of them recorded (the acceptance criterion).
        text = obs_metrics.REGISTRY.render_text()
        for name in (
            "repro_engine_shard_seconds",
            "repro_mining_counter_total",
            "repro_pool_queue_depth",
            "repro_server_request_seconds",
            "repro_daemon_cycle_seconds",
            "repro_durability_journal_appends_total",
        ):
            assert f"# TYPE {name}" in text


class TestSnapshotMerge:
    def _delta(self, op_counts, observations):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", labels=("op",))
        histogram = registry.histogram("dur_seconds", "Durations.")
        gauge = registry.gauge("level", "Level.")
        for op, amount in op_counts:
            counter.inc(amount, op=op)
        for value in observations:
            histogram.observe(value)
        if observations:
            # Levels carried in a delta are peaks; merging takes the max.
            gauge.set(max(observations))
        return registry.snapshot()

    def test_snapshot_is_picklable_and_deterministic(self):
        delta = self._delta([("a", 2), ("b", 1)], [0.1, 0.2])
        assert pickle.loads(pickle.dumps(delta)) == delta
        again = self._delta([("b", 1), ("a", 2)], [0.2, 0.1])
        assert again == delta

    def test_merge_creates_families_and_adds(self):
        target = MetricsRegistry()
        target.merge(self._delta([("a", 1)], [0.1]))
        target.merge(self._delta([("a", 2), ("b", 3)], [5.0]))
        assert target.get("ops_total").value(op="a") == 3
        assert target.get("ops_total").value(op="b") == 3
        counts, total, count = target.get("dur_seconds").sample()
        assert count == 2 and total == pytest.approx(5.1)
        # Gauges take the max: order-free for level-style values.
        assert target.get("level").value() == 5.0

    @given(
        deltas=st.lists(
            st.tuples(
                st.lists(
                    st.tuples(st.sampled_from("abc"), st.integers(1, 5)), max_size=4
                ),
                # Dyadic values: histogram sums stay exact in any merge
                # order, so snapshot equality is bitwise.
                st.lists(st.integers(1, 512).map(lambda n: n / 64.0), max_size=4),
            ),
            min_size=1,
            max_size=5,
        ),
        seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_permutation_invariant(self, deltas, seed):
        """Folding worker deltas in any completion order merges identically."""
        snapshots = [self._delta(ops, observations) for ops, observations in deltas]
        shuffled = list(snapshots)
        seed.shuffle(shuffled)
        ordered, permuted = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            ordered.merge(snapshot)
        for snapshot in shuffled:
            permuted.merge(snapshot)
        assert ordered.snapshot() == permuted.snapshot()
        assert ordered.render_text() == permuted.render_text()

    def test_merged_deltas_equal_direct_recording(self):
        """One registry recording everything == many deltas merged."""
        direct = MetricsRegistry()
        counter = direct.counter("ops_total", "Ops.", labels=("op",))
        histogram = direct.histogram("dur_seconds", "Durations.")
        merged = MetricsRegistry()
        for op, value in [("a", 0.01), ("b", 0.2), ("a", 3.0)]:
            counter.inc(op=op)
            histogram.observe(value)
            delta = MetricsRegistry()
            delta.counter("ops_total", "Ops.", labels=("op",)).inc(op=op)
            delta.histogram("dur_seconds", "Durations.").observe(value)
            merged.merge(delta.snapshot())
        assert merged.snapshot() == direct.snapshot()

    def test_default_buckets_are_sorted_and_nontrivial(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(DEFAULT_BUCKETS) >= 8
