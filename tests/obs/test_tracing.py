"""Tests for span tracing: arming, ring bounds, JSONL output, CLI plumbing."""

import json

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def disarm():
    """Every test starts and ends with tracing disarmed."""
    tracing.reset()
    yield
    tracing.reset()


class TestSpan:
    def test_disarmed_span_is_shared_noop(self):
        assert tracing.ACTIVE is None
        first = tracing.span("engine.execute", backend="serial")
        second = tracing.span("daemon.cycle")
        assert first is second  # the shared no-op: no allocation per site
        with first:
            pass

    def test_armed_span_records_name_duration_attrs(self):
        collector = tracing.install()
        with tracing.span("engine.shard", index=3):
            pass
        entries = collector.snapshot()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["name"] == "engine.shard"
        assert entry["attrs"] == {"index": 3}
        assert entry["dur"] >= 0.0
        assert isinstance(entry["pid"], int)

    def test_span_records_even_when_body_raises(self):
        collector = tracing.install()
        with pytest.raises(RuntimeError):
            with tracing.span("daemon.cycle"):
                raise RuntimeError("boom")
        assert [entry["name"] for entry in collector.snapshot()] == ["daemon.cycle"]

    def test_ring_is_bounded_oldest_evicted(self):
        collector = tracing.install(ring_size=3)
        for index in range(5):
            with tracing.span("s", i=index):
                pass
        kept = [entry["attrs"]["i"] for entry in collector.snapshot()]
        assert kept == [2, 3, 4]

    def test_install_replaces_and_reset_disarms(self):
        first = tracing.install()
        second = tracing.install()
        assert tracing.ACTIVE is second and first is not second
        tracing.reset()
        assert tracing.ACTIVE is None


class TestJsonlFile:
    def test_spans_append_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracing.install(str(path))
        with tracing.span("engine.execute", backend="serial"):
            with tracing.span("engine.shard", index=0):
                pass
        tracing.reset()
        lines = path.read_text(encoding="utf-8").splitlines()
        entries = [json.loads(line) for line in lines]
        # Inner span finishes (and lands) first.
        assert [entry["name"] for entry in entries] == ["engine.shard", "engine.execute"]
        assert entries[1]["dur"] >= entries[0]["dur"]

    def test_reinstall_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracing.install(str(path))
            with tracing.span("s"):
                pass
            tracing.reset()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2


class TestCliPlumbing:
    def test_trace_out_writes_engine_spans(self, tmp_path):
        from repro.cli import main
        from repro.traces.io import write_traces
        from repro.core.sequence import SequenceDatabase

        trace_file = tmp_path / "in.txt"
        write_traces(
            SequenceDatabase.from_sequences([["a", "b"], ["a", "b"], ["a", "c"]]),
            trace_file,
        )
        out = tmp_path / "trace.jsonl"
        code = main(
            [
                "mine-rules",
                "--input",
                str(trace_file),
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        assert tracing.ACTIVE is None  # main() disarms on the way out
        names = {
            json.loads(line)["name"]
            for line in out.read_text(encoding="utf-8").splitlines()
        }
        assert "engine.execute" in names

    def test_trace_summary_tool_aggregates(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "trace_summary",
            Path(__file__).resolve().parents[2] / "tools" / "trace_summary.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        path = tmp_path / "trace.jsonl"
        entries = [
            {"name": "engine.shard", "ts": 1.0, "dur": 0.25, "pid": 1},
            {"name": "engine.shard", "ts": 2.0, "dur": 0.75, "pid": 1},
            {"name": "daemon.cycle", "ts": 3.0, "dur": 2.0, "pid": 1},
        ]
        text = "\n".join(json.dumps(entry) for entry in entries) + "\nnot json\n"
        path.write_text(text, encoding="utf-8")
        assert module.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "daemon.cycle" in out and "engine.shard" in out
        assert "3 spans, 2 distinct names" in out
        rows = module.summarise(module.load_spans([str(path)]))
        assert rows[0]["name"] == "daemon.cycle"  # sorted by total desc
        assert rows[1]["count"] == 2
        assert rows[1]["total"] == pytest.approx(1.0)
