"""Tests for span tracing: arming, ring bounds, JSONL output, CLI plumbing,
trace-context propagation and counted (never silent) span loss."""

import json
import os
import threading

import pytest

from repro.obs import tracing
from repro.obs.metrics import OBS_SPANS_DROPPED_TOTAL


@pytest.fixture(autouse=True)
def disarm():
    """Every test starts and ends with tracing disarmed."""
    tracing.reset()
    yield
    tracing.reset()


class TestSpan:
    def test_disarmed_span_is_shared_noop(self):
        assert tracing.ACTIVE is None
        first = tracing.span("engine.execute", backend="serial")
        second = tracing.span("daemon.cycle")
        assert first is second  # the shared no-op: no allocation per site
        with first:
            pass

    def test_armed_span_records_name_duration_attrs(self):
        collector = tracing.install()
        with tracing.span("engine.shard", index=3):
            pass
        entries = collector.snapshot()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["name"] == "engine.shard"
        assert entry["attrs"] == {"index": 3}
        assert entry["dur"] >= 0.0
        assert isinstance(entry["pid"], int)

    def test_span_records_even_when_body_raises(self):
        collector = tracing.install()
        with pytest.raises(RuntimeError):
            with tracing.span("daemon.cycle"):
                raise RuntimeError("boom")
        assert [entry["name"] for entry in collector.snapshot()] == ["daemon.cycle"]

    def test_ring_is_bounded_oldest_evicted(self):
        collector = tracing.install(ring_size=3)
        for index in range(5):
            with tracing.span("s", i=index):
                pass
        kept = [entry["attrs"]["i"] for entry in collector.snapshot()]
        assert kept == [2, 3, 4]

    def test_install_replaces_and_reset_disarms(self):
        first = tracing.install()
        second = tracing.install()
        assert tracing.ACTIVE is second and first is not second
        tracing.reset()
        assert tracing.ACTIVE is None


class TestTraceContext:
    def test_nested_spans_share_trace_and_link_parent(self):
        collector = tracing.install()
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        inner, outer = collector.snapshot()
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert "parent" not in outer
        assert inner["span"] != outer["span"]

    def test_sibling_traces_are_distinct(self):
        collector = tracing.install()
        with tracing.span("a"):
            pass
        with tracing.span("b"):
            pass
        first, second = collector.snapshot()
        assert first["trace"] != second["trace"]

    def test_ensure_context_inside_span_is_that_span(self):
        tracing.install()
        with tracing.span("outer"):
            trace_id, span_id = tracing.ensure_context()
            assert (trace_id, span_id) == tracing.current_ids()
            assert span_id is not None

    def test_ensure_context_ambient_is_stable_per_thread(self):
        tracing.install()
        assert tracing.current_ids() is None
        first = tracing.ensure_context()
        second = tracing.ensure_context()
        assert first == second
        assert first[1] is None  # no parent span outside any span
        other = []
        thread = threading.Thread(target=lambda: other.append(tracing.ensure_context()))
        thread.start()
        thread.join()
        assert other[0][0] != first[0]  # each thread gets its own trace

    def test_remote_span_continues_wire_context(self):
        collector = tracing.install()
        with tracing.remote_span("server.request", "cafe1234cafe1234", "beef5678beef5678"):
            pass
        (entry,) = collector.snapshot()
        assert entry["trace"] == "cafe1234cafe1234"
        assert entry["parent"] == "beef5678beef5678"

    def test_remote_span_ignores_junk_wire_ids(self):
        collector = tracing.install()
        with tracing.remote_span("server.request", 42, ["junk"]):
            pass
        (entry,) = collector.snapshot()
        # Falls back to a fresh local trace instead of propagating junk.
        assert entry["trace"] not in (42, "42")
        assert "parent" not in entry

    def test_adopt_parents_top_level_spans(self):
        collector = tracing.install()
        tracing.adopt("feed0000feed0000", "abad1deaabad1dea")
        try:
            with tracing.span("engine.unit"):
                pass
        finally:
            tracing.adopt(None)
        (entry,) = collector.snapshot()
        assert entry["trace"] == "feed0000feed0000"
        assert entry["parent"] == "abad1deaabad1dea"


class TestSpanLoss:
    def test_ring_eviction_increments_dropped_counter(self):
        before = OBS_SPANS_DROPPED_TOTAL.value(reason="ring")
        tracing.install(ring_size=2)
        for index in range(5):
            with tracing.span("s", i=index):
                pass
        assert OBS_SPANS_DROPPED_TOTAL.value(reason="ring") == before + 3

    def test_write_failure_increments_dropped_counter_keeps_ring(self, tmp_path):
        before = OBS_SPANS_DROPPED_TOTAL.value(reason="write")
        collector = tracing.install(str(tmp_path / "trace.jsonl"))
        with tracing.span("ok"):
            pass
        collector._file.close()  # simulate the handle dying under us
        collector._file = open(os.devnull, "w")
        collector._file.close()  # a closed handle raises ValueError on write
        with tracing.span("lost"):
            pass
        assert OBS_SPANS_DROPPED_TOTAL.value(reason="write") == before + 1
        # The span itself survives in the ring; only the file is incomplete.
        assert [entry["name"] for entry in collector.snapshot()] == ["ok", "lost"]


class TestWorkerShipping:
    def test_drain_shipped_only_when_shipping(self):
        tracing.install()
        with tracing.span("s"):
            pass
        assert tracing.drain_shipped() is None  # coordinator collector: no
        tracing.reset()
        assert tracing.drain_shipped() is None  # disarmed: no
        tracing.install_shipping()
        assert tracing.shipping()
        assert tracing.drain_shipped() is None  # nothing recorded yet
        with tracing.span("engine.unit", root="a"):
            pass
        batch = tracing.drain_shipped()
        assert batch is not None and [e["name"] for e in batch] == ["engine.unit"]
        assert tracing.drain_shipped() is None  # drained

    def test_absorb_outcome_spans_folds_batches(self):
        class Outcome:
            def __init__(self, spans):
                self.spans = spans

        shipped = ({"name": "engine.unit", "ts": 1.0, "dur": 0.1, "pid": 999},)
        tracing.absorb_outcome_spans([Outcome(shipped)])  # disarmed: no-op
        collector = tracing.install()
        tracing.absorb_outcome_spans([Outcome(shipped), Outcome(None)])
        assert [entry["pid"] for entry in collector.snapshot()] == [999]

    def test_process_backend_ships_worker_spans_into_one_trace(self):
        from repro.core.sequence import SequenceDatabase
        from repro.engine import ProcessPoolBackend
        from repro.rules.nonredundant_miner import mine_non_redundant_rules

        collector = tracing.install()
        db = SequenceDatabase.from_sequences(
            [["a", "b"], ["a", "b"], ["a", "c"], ["b", "c"]]
        )
        mine_non_redundant_rules(
            db, min_s_support=2, min_confidence=0.5, backend=ProcessPoolBackend(workers=2)
        )
        entries = collector.snapshot()
        execute = next(e for e in entries if e["name"] == "engine.execute")
        shards = [e for e in entries if e["name"] == "engine.shard"]
        assert shards, entries
        # The worker-side spans were shipped back: they carry worker pids
        # and the coordinator's trace id.
        assert any(e["pid"] != os.getpid() for e in shards)
        assert all(e["trace"] == execute["trace"] for e in shards)


class TestJsonlFile:
    def test_spans_append_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracing.install(str(path))
        with tracing.span("engine.execute", backend="serial"):
            with tracing.span("engine.shard", index=0):
                pass
        tracing.reset()
        lines = path.read_text(encoding="utf-8").splitlines()
        entries = [json.loads(line) for line in lines]
        # Inner span finishes (and lands) first.
        assert [entry["name"] for entry in entries] == ["engine.shard", "engine.execute"]
        assert entries[1]["dur"] >= entries[0]["dur"]

    def test_reinstall_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracing.install(str(path))
            with tracing.span("s"):
                pass
            tracing.reset()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2


class TestCliPlumbing:
    def test_trace_out_writes_engine_spans(self, tmp_path):
        from repro.cli import main
        from repro.traces.io import write_traces
        from repro.core.sequence import SequenceDatabase

        trace_file = tmp_path / "in.txt"
        write_traces(
            SequenceDatabase.from_sequences([["a", "b"], ["a", "b"], ["a", "c"]]),
            trace_file,
        )
        out = tmp_path / "trace.jsonl"
        code = main(
            [
                "mine-rules",
                "--input",
                str(trace_file),
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        assert tracing.ACTIVE is None  # main() disarms on the way out
        names = {
            json.loads(line)["name"]
            for line in out.read_text(encoding="utf-8").splitlines()
        }
        assert "engine.execute" in names

    def test_trace_summary_tool_aggregates(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "trace_summary",
            Path(__file__).resolve().parents[2] / "tools" / "trace_summary.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        path = tmp_path / "trace.jsonl"
        entries = [
            {"name": "engine.shard", "ts": 1.0, "dur": 0.25, "pid": 1},
            {"name": "engine.shard", "ts": 2.0, "dur": 0.75, "pid": 1},
            {"name": "daemon.cycle", "ts": 3.0, "dur": 2.0, "pid": 1},
        ]
        text = "\n".join(json.dumps(entry) for entry in entries) + "\nnot json\n"
        path.write_text(text, encoding="utf-8")
        assert module.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "daemon.cycle" in out and "engine.shard" in out
        assert "3 spans, 2 distinct names" in out
        rows = module.summarise(module.load_spans([str(path)]))
        assert rows[0]["name"] == "daemon.cycle"  # sorted by total desc
        assert rows[1]["count"] == 2
        assert rows[1]["total"] == pytest.approx(1.0)

    @staticmethod
    def _load_tool():
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "trace_summary",
            Path(__file__).resolve().parents[2] / "tools" / "trace_summary.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_trace_summary_tolerates_empty_file(self, tmp_path, capsys):
        module = self._load_tool()
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert module.main([str(path)]) == 0
        assert "0 spans, 0 distinct names" in capsys.readouterr().out

    def test_trace_summary_tolerates_torn_final_line(self, tmp_path, capsys):
        """A crash can tear the last line mid-way through a multibyte
        UTF-8 sequence; the valid prefix must still summarise."""
        module = self._load_tool()
        path = tmp_path / "torn.jsonl"
        good = json.dumps({"name": "engine.shard", "ts": 1.0, "dur": 0.5, "pid": 1})
        torn = json.dumps({"name": "daemon.cycle", "attrs": {"file": "tracé"}})
        payload = (good + "\n" + torn).encode("utf-8")[:-4]  # tear inside "é"…
        path.write_bytes(payload)
        assert module.main([str(path)]) == 0
        assert "1 spans, 1 distinct names" in capsys.readouterr().out
