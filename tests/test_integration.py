"""End-to-end integration tests across the whole pipeline.

Each test follows the paper's workflow: obtain traces (synthetic or from the
simulated JBoss components), mine patterns and rules, and use the mined
specifications downstream (LTL, monitoring, charts, persistence).
"""

import pytest

from repro import (
    IterativeMiningConfig,
    RuleMiningConfig,
    SequenceDatabase,
    SpecificationRepository,
    mine_all_rules,
    mine_closed_patterns,
    mine_frequent_patterns,
    mine_non_redundant_rules,
)
from repro.analysis.compare import closed_result_is_consistent, nonredundant_result_is_consistent
from repro.datagen import QuestConfig, generate_quest_database
from repro.patterns import ClosedIterativePatternMiner, FullIterativePatternMiner
from repro.rules import FullRecurrentRuleMiner, NonRedundantRecurrentRuleMiner
from repro.specs import chart_from_pattern, rank_patterns, rank_rules
from repro.verification import RuleMonitor, coverage_of


@pytest.fixture(scope="module")
def synthetic_db() -> SequenceDatabase:
    config = QuestConfig(
        num_sequences=60,
        avg_sequence_length=12,
        num_events=60,
        avg_pattern_length=5,
        num_patterns=12,
        corruption_probability=0.2,
        noise_probability=0.1,
        seed=2024,
    )
    return generate_quest_database(config)


def test_synthetic_closed_vs_full_consistency(synthetic_db):
    full = FullIterativePatternMiner(
        IterativeMiningConfig(min_support=8, max_pattern_length=4)
    ).mine(synthetic_db)
    closed = ClosedIterativePatternMiner(
        IterativeMiningConfig(min_support=8, max_pattern_length=4)
    ).mine(synthetic_db)
    assert len(closed) <= len(full)
    assert closed_result_is_consistent(full, closed) == []


def test_synthetic_rule_nr_vs_full_consistency(synthetic_db):
    config = RuleMiningConfig(
        min_s_support=0.25, min_confidence=0.7, max_premise_length=2, max_consequent_length=2
    )
    full = FullRecurrentRuleMiner(config).mine(synthetic_db)
    non_redundant = NonRedundantRecurrentRuleMiner(config).mine(synthetic_db)
    assert len(non_redundant) <= len(full)
    assert nonredundant_result_is_consistent(full, non_redundant) == []


def test_mined_rules_monitor_their_own_training_traces(synthetic_db):
    rules = mine_non_redundant_rules(
        synthetic_db,
        min_s_support=0.25,
        min_confidence=1.0,
        max_premise_length=1,
        max_consequent_length=1,
    )
    if not rules.rules:
        pytest.skip("no 100%-confidence rules on this synthetic draw")
    monitor = RuleMonitor(rules.rules)
    report = monitor.check_database(synthetic_db)
    # Rules mined at 100% confidence cannot be violated on their own traces.
    assert report.violation_count == 0


def test_pipeline_from_mining_to_repository_and_charts(tmp_path, synthetic_db):
    patterns = mine_closed_patterns(synthetic_db, min_support=8, max_pattern_length=4)
    rules = mine_all_rules(
        synthetic_db,
        min_s_support=0.3,
        min_confidence=0.8,
        max_premise_length=1,
        max_consequent_length=1,
    )
    repository = SpecificationRepository("synthetic")
    repository.add_pattern_result(patterns)
    repository.add_rule_result(rules)
    path = tmp_path / "specs.json"
    repository.save(path)
    loaded = SpecificationRepository.load(path)
    assert len(loaded) == len(repository)

    ranked_patterns = rank_patterns(patterns, top=3)
    assert len(ranked_patterns) <= 3
    if rules.rules:
        assert rank_rules(rules, top=1)

    if patterns.patterns:
        chart = chart_from_pattern(patterns.longest().events)
        assert len(chart) == len(patterns.longest().events)

    report = coverage_of(synthetic_db, patterns=patterns.patterns, rules=rules.rules)
    assert 0.0 <= report.position_coverage <= 1.0
    assert 0.0 <= report.vocabulary_coverage <= 1.0


def test_resource_protocol_end_to_end():
    """The introduction's resource-locking example, end to end."""
    db = SequenceDatabase.from_sequences(
        [
            ["acquire", "use", "release", "acquire", "release"],
            ["acquire", "compute", "release"],
            ["acquire", "use", "use", "release"],
            ["idle", "acquire", "release"],
        ]
    )
    patterns = mine_closed_patterns(db, min_support=5)
    assert patterns.contains(("acquire", "release"))

    rules = mine_non_redundant_rules(db, min_s_support=4, min_confidence=0.9)
    rule = rules.find(("acquire",), ("release",))
    assert rule is not None
    assert rule.confidence == pytest.approx(1.0)

    monitor = RuleMonitor([rule])
    assert monitor.satisfies(["acquire", "work", "release"])
    assert not monitor.satisfies(["acquire", "work"])


def test_closed_patterns_are_a_subset_of_full_patterns(synthetic_db):
    full = mine_frequent_patterns(synthetic_db, min_support=10, max_pattern_length=3)
    closed = mine_closed_patterns(synthetic_db, min_support=10, max_pattern_length=3)
    full_events = {pattern.events for pattern in full}
    assert {pattern.events for pattern in closed} <= full_events
