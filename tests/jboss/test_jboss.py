"""Tests for the simulated JBoss components and workloads."""

import pytest

from repro.jboss.reference import (
    FIGURE4_PATTERN,
    FIGURE5_CONSEQUENT,
    FIGURE5_PREMISE,
    JTA_COMMIT_PATTERN,
    TRANSACTION_ROLLBACK,
)
from repro.jboss.security import JaasSecurityService
from repro.jboss.transaction import TransactionClient
from repro.jboss.workloads import (
    SecurityWorkloadConfig,
    TransactionWorkloadConfig,
    generate_case_study_traces,
    generate_security_traces,
    generate_transaction_traces,
)
from repro.traces.trace import TraceCollector


def test_figure4_pattern_has_32_events_and_matches_the_figure_blocks():
    assert len(FIGURE4_PATTERN) == 32
    assert FIGURE4_PATTERN[0] == "TransactionManagerLocator.getInstance"
    assert FIGURE4_PATTERN[-1] == "LocalId.equals"
    assert "TxManager.begin" in FIGURE4_PATTERN
    assert "TxManager.commit" in FIGURE4_PATTERN


def test_figure5_rule_shape():
    assert len(FIGURE5_PREMISE) == 2
    assert len(FIGURE5_CONSEQUENT) == 12
    assert FIGURE5_CONSEQUENT.count("SecAssoc.getPrincipal") == 2
    assert FIGURE5_CONSEQUENT.count("SecAssoc.getCredential") == 2


def test_committed_transaction_records_exactly_the_figure4_protocol():
    collector = TraceCollector()
    with collector.trace("commit"):
        client = TransactionClient(collector)
        status = client.run_transaction(commit=True)
    assert status == "COMMITTED"
    assert tuple(collector.traces[0].events) == FIGURE4_PATTERN


def test_client_work_is_interleaved_inside_the_protocol():
    collector = TraceCollector()
    with collector.trace("commit"):
        TransactionClient(collector).run_transaction(commit=True, work=["SQL.execute"])
    events = collector.traces[0].events
    assert "SQL.execute" in events
    # Removing the work event leaves exactly the protocol.
    assert tuple(e for e in events if e != "SQL.execute") == FIGURE4_PATTERN
    # The work happens after transaction set-up and before the commit block.
    assert events.index("SQL.execute") > events.index("TransactionImpl.associateCurrentThread")
    assert events.index("SQL.execute") < events.index("TxManager.commit")


def test_rolled_back_transaction_records_the_rollback_variant():
    collector = TraceCollector()
    with collector.trace("rollback"):
        status = TransactionClient(collector).run_transaction(commit=False)
    assert status == "ROLLED_BACK"
    events = collector.traces[0].events
    assert "TxManager.rollback" in events
    assert "TxManager.commit" not in events
    for event in TRANSACTION_ROLLBACK:
        assert event in events
    # JTA: begin happens before rollback.
    assert events.index("TxManager.begin") < events.index("TxManager.rollback")
    assert events.index(JTA_COMMIT_PATTERN[0]) == events.index("TxManager.begin")


def test_successful_authentication_records_premise_then_consequent():
    collector = TraceCollector()
    with collector.trace("auth"):
        service = JaasSecurityService(collector)
        outcome = service.authenticate(username="alice", uses=2)
    assert outcome.authenticated and outcome.configuration_found
    assert outcome.principal_name == "alice"
    assert tuple(collector.traces[0].events) == FIGURE5_PREMISE + FIGURE5_CONSEQUENT


def test_failed_login_stops_after_abort():
    collector = TraceCollector()
    with collector.trace("auth"):
        outcome = JaasSecurityService(collector).authenticate(valid_credentials=False)
    assert not outcome.authenticated and outcome.configuration_found
    events = collector.traces[0].events
    assert events[-1] == "ClientLoginMod.abort"
    assert "ClientLoginMod.commit" not in events


def test_missing_configuration_records_only_the_lookup():
    collector = TraceCollector()
    with collector.trace("auth"):
        outcome = JaasSecurityService(collector).authenticate(entry_name="missing")
    assert not outcome.configuration_found
    assert collector.traces[0].events == ["XmlLoginCI.getConfEntry"]


def test_transaction_workload_is_deterministic_and_contains_protocol():
    config = TransactionWorkloadConfig(num_traces=5, seed=1)
    first = generate_transaction_traces(config)
    second = generate_transaction_traces(config)
    assert list(first) == list(second)
    assert len(first) == 5
    all_events = [event for i in range(len(first)) for event in first[i]]
    assert "TxManager.begin" in all_events


def test_transaction_workload_validation():
    with pytest.raises(Exception):
        TransactionWorkloadConfig(num_traces=0)
    with pytest.raises(Exception):
        TransactionWorkloadConfig(min_transactions_per_trace=3, max_transactions_per_trace=1)


def test_security_workload_contains_all_three_scenario_kinds():
    config = SecurityWorkloadConfig(num_traces=16, seed=5)
    db = generate_security_traces(config)
    assert len(db) == 16
    flattened = [list(db[i]) for i in range(len(db))]
    assert any("ClientLoginMod.commit" in trace for trace in flattened)
    assert any(
        "XmlLoginCI.getConfEntry" in trace and "AuthenInfo.getName" not in trace
        for trace in flattened
    ), "expected at least one configuration-unavailable trace"


def test_combined_case_study_traces():
    db = generate_case_study_traces(
        TransactionWorkloadConfig(num_traces=3, seed=2),
        SecurityWorkloadConfig(num_traces=3, seed=2),
    )
    assert len(db) == 6
    names = [db.name(i) for i in range(len(db))]
    assert any(name.startswith("tx-test") for name in names)
    assert any(name.startswith("sec-test") for name in names)
