"""Integration tests: the Section 7 case studies on the simulated JBoss traces.

These are the library-level versions of Figures 4 and 5: the closed
iterative-pattern miner recovers the transaction protocol, and the
non-redundant recurrent-rule miner recovers the JAAS authentication rule.
The workloads here are intentionally small so the tests stay fast; the
benchmark suite runs the full-size versions.
"""

import pytest

from repro.jboss.reference import FIGURE4_PATTERN, FIGURE5_CONSEQUENT, FIGURE5_PREMISE
from repro.ltl.semantics import holds
from repro.ltl.translate import rule_to_ltl
from repro.patterns.closed_miner import ClosedIterativePatternMiner
from repro.patterns.config import IterativeMiningConfig
from repro.rules.config import RuleMiningConfig
from repro.rules.nonredundant_miner import NonRedundantRecurrentRuleMiner
from repro.verification.monitor import RuleMonitor


@pytest.fixture(scope="module")
def transaction_patterns(small_transaction_traces):
    config = IterativeMiningConfig(
        min_support=4, adjacent_absorption_pruning=True, collect_instances=False
    )
    return ClosedIterativePatternMiner(config).mine(small_transaction_traces)


def test_figure4_pattern_is_mined(transaction_patterns):
    assert transaction_patterns.contains(FIGURE4_PATTERN)


def test_figure4_pattern_is_the_longest_mined_pattern(transaction_patterns):
    longest = transaction_patterns.longest()
    assert longest is not None
    assert longest.events == FIGURE4_PATTERN


def test_figure4_support_counts_committed_transactions(
    transaction_patterns, small_transaction_traces
):
    commits = sum(
        list(small_transaction_traces[i]).count("TxManager.commit")
        for i in range(len(small_transaction_traces))
    )
    assert transaction_patterns.support_of(FIGURE4_PATTERN) == commits


@pytest.fixture(scope="module")
def security_rules(small_security_traces):
    config = RuleMiningConfig(
        min_s_support=0.5,
        min_confidence=0.5,
        min_i_support=1,
        max_premise_length=2,
        allowed_premise_events=frozenset(FIGURE5_PREMISE),
    )
    return NonRedundantRecurrentRuleMiner(config).mine(small_security_traces)


def test_figure5_rule_is_mined(security_rules):
    assert security_rules.contains(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)


def test_figure5_rule_confidence_reflects_login_failures(security_rules):
    rule = security_rules.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)
    assert 0.5 <= rule.confidence < 1.0
    assert rule.i_support >= 1
    assert rule.s_support >= security_rules.min_s_support


def test_figure5_rule_differs_from_single_event_premise_variant(security_rules, small_security_traces):
    """The coarser <getConfEntry> premise has different statistics, which is
    exactly why the two-event-premise rule of Figure 5 is not redundant."""
    from repro.core.positions import PositionIndex
    from repro.rules.temporal_points import rule_statistics

    encoded = small_security_traces.encoded
    index = PositionIndex(encoded)
    vocabulary = small_security_traces.vocabulary
    coarse = rule_statistics(
        encoded,
        index,
        vocabulary.encode(("XmlLoginCI.getConfEntry",)),
        vocabulary.encode(("AuthenInfo.getName",) + FIGURE5_CONSEQUENT),
    )
    fine_rule = security_rules.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)
    assert (coarse[0], coarse[1], coarse[2]) != (
        fine_rule.s_support,
        fine_rule.i_support,
        fine_rule.confidence,
    )


def test_mined_rule_violations_match_failed_logins(security_rules, small_security_traces):
    rule = security_rules.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)
    report = RuleMonitor([rule]).check_database(small_security_traces)
    # Confidence measured during mining equals the monitoring satisfaction rate.
    assert report.satisfaction_rate == pytest.approx(rule.confidence)
    assert report.violation_count > 0


def test_mined_rule_ltl_translation_holds_on_clean_traces(security_rules):
    rule = security_rules.find(FIGURE5_PREMISE, FIGURE5_CONSEQUENT)
    formula = rule_to_ltl(rule.premise, rule.consequent)
    clean_trace = list(FIGURE5_PREMISE + FIGURE5_CONSEQUENT)
    violating_trace = list(FIGURE5_PREMISE) + ["ClientLoginMod.initialize"]
    assert holds(formula, clean_trace)
    assert not holds(formula, violating_trace)
